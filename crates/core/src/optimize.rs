//! Guided design-space search: RAT "applied iteratively", steered.
//!
//! [`crate::explore`] answers "which corners pass?" by brute force — fine for
//! a handful of candidate clocks, hopeless once the space grows devices,
//! precision candidates, and continuous frequency/parallelism axes. This
//! module replaces enumeration with a **deterministic, seeded,
//! population-based search** (a cross-entropy method with per-axis Gaussian
//! adaptation — see `DESIGN.md` §17 for why this beats simulated annealing on
//! RAT's batch kernels): each generation draws a population of candidate
//! design points, evaluates all of them through the SoA
//! [`solve_batch`] kernels on the warm engine pool, gates each candidate
//! through the Eq. (9)–(11) resource test, and adapts the sampling
//! distribution toward the feasible elite.
//!
//! The output is not a single winner but a **Pareto front** over three
//! objectives: predicted speedup (Eq. 7, maximize), computation utilization
//! (Eqs. 8/10, maximize), and resource pressure (the largest of the Eq.
//! (9)–(11)-style utilization fractions, minimize). A migration decision
//! trades these off — the fastest point may saturate the device, the
//! lightest may idle it — so the front is the honest deliverable.
//!
//! ## Determinism contract
//!
//! Same seed → bit-identical front, at every `--jobs` setting and with SIMD
//! forced on or off. Three mechanisms carry the contract:
//!
//! 1. All random draws happen on the coordinating thread from per-generation
//!    streams [`job_rng`]`(seed, generation)` — never from a stream consumed
//!    in scheduling order.
//! 2. Candidate evaluation is dispatched as [`solve_batch`] chunks sized by
//!    [`Engine::chunk_len`]; the batch kernels are bit-identical across chunk
//!    seams and to the scalar [`Worksheet::analyze`] path (pinned by the
//!    PR 8 differential suites), so results cannot depend on the job count
//!    or the vector ISA.
//! 3. Every ranking and front update orders floats with `total_cmp` and
//!    breaks ties by candidate index, in generation order.
//!
//! [`Worksheet::analyze`]: crate::worksheet::Worksheet::analyze

use crate::engine::{job_rng, Engine, PointCost};
use crate::error::RatError;
use crate::params::{Buffering, RatInput};
use crate::report::Report;
use crate::resources::device::{all_devices, FpgaDevice, LogicKind};
use crate::resources::estimate::{
    brams_for_buffer, dsps_for_multiplier, ResourceEstimate, ALTERA_M4K_BYTES, XILINX_BRAM18_BYTES,
};
use crate::resources::ResourceReport;
use crate::solve::batch::{solve_batch, BatchPoints};
use crate::sweep::SweepParam;
use crate::table::{pct, TextTable};
use crate::telemetry::{self, Metric};
use fixedpoint::QFormat;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Slices/ALUTs of datapath logic per lane-bit of the candidate's number
/// format: registers, routing, and the adder tree around each dedicated
/// multiplier. Coarse by design — the paper is frank that a-priori logic
/// counts are inexact — but deterministic, so the resource gate is
/// reproducible.
const LOGIC_CELLS_PER_LANE_BIT: u64 = 12;

/// Fixed control-plane overhead (state machine, DMA glue) independent of
/// parallelism.
const CONTROL_OVERHEAD_CELLS: u64 = 320;

/// Fraction of the population adopted as the elite set each generation.
const ELITE_FRACTION: usize = 8;

/// Multiplier applied to the elite standard deviation when adapting the
/// per-axis step size: keeps the search from collapsing prematurely on a
/// lucky early generation.
const SIGMA_EXPAND: f64 = 1.2;

/// Relative floor on the per-axis step size (fraction of the axis range):
/// the distribution never degenerates to a point, so later generations keep
/// probing even after convergence.
const SIGMA_RANGE_FLOOR: f64 = 1e-4;

/// The design space a guided search samples from.
///
/// Continuous axes are closed ranges; categorical axes are candidate lists.
/// An empty categorical list means "use the default" — the base worksheet's
/// buffering, the full device catalog, or the paper's two fixed-point
/// precision candidates (18-bit and 32-bit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeSpace {
    /// The base design; axis values overwrite its corresponding fields.
    pub base: RatInput,
    /// Clock frequency range in Hz, inclusive.
    pub fclock_hz: (f64, f64),
    /// `throughput_proc` range in ops/cycle, inclusive.
    pub throughput_proc: (f64, f64),
    /// Candidate buffering disciplines. Empty = the base discipline.
    pub bufferings: Vec<Buffering>,
    /// Candidate target devices. Empty = the full catalog.
    pub devices: Vec<FpgaDevice>,
    /// Candidate fixed-point formats. Empty = the paper's Q0.17 (18-bit) and
    /// Q0.31 (32-bit) candidates.
    pub precisions: Vec<QFormat>,
}

impl OptimizeSpace {
    /// A space around `base` with the paper's own exploration shape: clocks
    /// from half the base clock up to the base clock, parallelism from one
    /// op/cycle up to the base `throughput_proc`, both buffering
    /// disciplines, the default device catalog and precision candidates.
    pub fn around(base: RatInput) -> Self {
        let f = base.comp.fclock.hz();
        let tp = base.comp.throughput_proc;
        OptimizeSpace {
            base,
            fclock_hz: (0.5 * f, f),
            throughput_proc: (1.0_f64.min(tp), tp),
            bufferings: vec![Buffering::Single, Buffering::Double],
            devices: Vec::new(),
            precisions: Vec::new(),
        }
    }

    /// Validate the axes, naming the offending field.
    pub fn validate(&self) -> Result<(), RatError> {
        self.base.validate()?;
        range_ok("fclock_range", self.fclock_hz)?;
        range_ok("throughput_range", self.throughput_proc)?;
        Ok(())
    }

    fn resolved_bufferings(&self) -> Vec<Buffering> {
        if self.bufferings.is_empty() {
            vec![self.base.buffering]
        } else {
            self.bufferings.clone()
        }
    }

    fn resolved_devices(&self) -> Vec<FpgaDevice> {
        if self.devices.is_empty() {
            all_devices()
        } else {
            self.devices.clone()
        }
    }

    fn resolved_precisions(&self) -> Vec<QFormat> {
        if self.precisions.is_empty() {
            default_precisions()
        } else {
            self.precisions.clone()
        }
    }
}

/// The paper's two fixed-point candidates: the 18-bit format that fills one
/// dedicated multiplier, and the 32-bit format that costs two (§3.4's "32-bit
/// fixed-point multiplications on Xilinx V4 FPGAs require two dedicated
/// 18-bit multipliers").
pub fn default_precisions() -> Vec<QFormat> {
    let q17 = QFormat::signed(0, 17);
    let q31 = QFormat::signed(0, 31);
    match (q17, q31) {
        (Ok(a), Ok(b)) => vec![a, b],
        // 18 and 32 total bits are far below the 63-bit cap; unreachable.
        _ => Vec::new(),
    }
}

fn range_ok(field: &str, (lo, hi): (f64, f64)) -> Result<(), RatError> {
    if !(lo.is_finite() && hi.is_finite()) {
        return Err(RatError::quantity(
            field,
            format!("bounds must be finite, got [{lo}, {hi}]"),
        ));
    }
    if lo <= 0.0 {
        return Err(RatError::quantity(
            field,
            format!("lower bound must be positive, got {lo}"),
        ));
    }
    if lo > hi {
        return Err(RatError::quantity(
            field,
            format!("empty range: lower bound {lo} exceeds upper bound {hi}"),
        ));
    }
    Ok(())
}

/// Knobs of the search itself (not of the space it searches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizeConfig {
    /// Root seed: the whole run is a pure function of `(space, config)`.
    pub seed: u64,
    /// Generations to run.
    pub generations: u32,
    /// Candidates per generation (one `solve_batch` dispatch each).
    pub population: usize,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            seed: 2007,
            generations: 24,
            population: 512,
        }
    }
}

impl OptimizeConfig {
    /// Validate the knobs, naming the offending field.
    pub fn validate(&self) -> Result<(), RatError> {
        if self.generations == 0 {
            return Err(RatError::quantity(
                "generations",
                "must be at least 1".to_string(),
            ));
        }
        if self.population == 0 {
            return Err(RatError::quantity(
                "population",
                "must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// The three Pareto objectives of one evaluated, feasible design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objectives {
    /// Predicted speedup over software, Eq. (7). Maximize.
    pub speedup: f64,
    /// Computation utilization, Eq. (8)/(10). Maximize.
    pub util_comp: f64,
    /// Resource pressure: the largest of the DSP/BRAM/logic utilization
    /// fractions on the candidate device. Minimize.
    pub resource_frac: f64,
}

impl Objectives {
    /// Pareto dominance: at least as good on every objective and strictly
    /// better on at least one. Floats compare via `total_cmp`, so the
    /// relation is total even in the presence of exotic values.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let s = self.speedup.total_cmp(&other.speedup);
        let u = self.util_comp.total_cmp(&other.util_comp);
        // Resource pressure is minimized: flip the comparison.
        let r = other.resource_frac.total_cmp(&self.resource_frac);
        let none_worse = s != Ordering::Less && u != Ordering::Less && r != Ordering::Less;
        let some_better =
            s == Ordering::Greater || u == Ordering::Greater || r == Ordering::Greater;
        none_worse && some_better
    }

    /// Bitwise equality on all three objectives.
    pub fn ties(&self, other: &Objectives) -> bool {
        self.speedup.total_cmp(&other.speedup) == Ordering::Equal
            && self.util_comp.total_cmp(&other.util_comp) == Ordering::Equal
            && self.resource_frac.total_cmp(&other.resource_frac) == Ordering::Equal
    }
}

/// One non-dominated design point of the final front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// The full throughput report at this point. Bit-identical to running
    /// [`crate::worksheet::Worksheet::analyze`] on `report.input` directly —
    /// pinned by the differential suite.
    pub report: Report,
    /// The candidate device.
    pub device: FpgaDevice,
    /// The candidate number format.
    pub precision: QFormat,
    /// The Eq. (9)–(11) resource verdict (always `fits`; infeasible points
    /// never enter the front).
    pub resources: ResourceReport,
    /// The point's Pareto objectives.
    pub objectives: Objectives,
    /// The generation that first evaluated this point.
    pub generation: u32,
}

impl FrontPoint {
    /// Display name for the point: base design plus its axis coordinates.
    pub fn display_name(&self) -> String {
        format!(
            "{} [{:.1} MHz, {:.3} ops/cyc, {:?}, {}, {}]",
            self.report.input.name,
            self.report.input.comp.fclock.hz() / 1e6,
            self.report.input.comp.throughput_proc,
            self.report.input.buffering,
            self.device.name,
            self.precision,
        )
    }
}

/// Outcome of a guided search: the Pareto front plus the audit trail the
/// property suites replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeOutcome {
    /// Seed the run was rooted at.
    pub seed: u64,
    /// Generations actually run.
    pub generations: u32,
    /// Candidate evaluations performed (generations × population).
    pub evals: u64,
    /// Evaluations that passed the resource test.
    pub feasible_evals: u64,
    /// The non-dominated set, ranked by speedup (descending), ties by
    /// utilization then resource pressure then insertion order.
    pub front: Vec<FrontPoint>,
    /// Objectives of every *feasible* point the search visited, in
    /// evaluation order — the audit trail behind the dominance property:
    /// each entry is dominated by or ties a front member, and no entry
    /// dominates one.
    pub visited: Vec<Objectives>,
}

impl OptimizeOutcome {
    /// The highest-speedup front member.
    pub fn best(&self) -> &FrontPoint {
        // The constructor sorts the front and rejects empty fronts.
        &self.front[0]
    }

    /// Render the front as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title(format!(
                "Guided design-space search (seed {}, {} generations, {} evals, {} feasible, front {})",
                self.seed,
                self.generations,
                self.evals,
                self.feasible_evals,
                self.front.len()
            ))
            .header(["Design point", "Speedup", "util_comp", "max resource"]);
        for p in self.front.iter().take(10) {
            t.row([
                p.display_name(),
                format!("{:.2}", p.objectives.speedup),
                pct(p.objectives.util_comp),
                pct(p.objectives.resource_frac),
            ]);
        }
        let mut s = t.render();
        if self.front.len() > 10 {
            s.push_str(&format!(
                "... and {} more front points\n",
                self.front.len() - 10
            ));
        }
        let b = self.best();
        s.push_str(&format!(
            "best speedup: {} ({:.2}x, {} of {} {})\n",
            b.display_name(),
            b.objectives.speedup,
            b.resources.estimate.dsp,
            b.device.dsp_blocks,
            b.device.dsp_name,
        ));
        s
    }
}

/// Derive the Eq. (9)–(11) resource demand of one candidate: enough parallel
/// multiply lanes to sustain `throughput_proc` ops/cycle at the candidate
/// precision, input/output block buffers (doubled under double buffering),
/// and datapath + control logic.
pub fn estimate_candidate(
    base: &RatInput,
    throughput_proc: f64,
    buffering: Buffering,
    precision: QFormat,
    device: &FpgaDevice,
) -> ResourceEstimate {
    let lanes = throughput_proc.ceil().clamp(1.0, 1e9) as u64;
    let per_mult = u64::from(dsps_for_multiplier(
        precision.total_bits(),
        device.native_mult_width,
    ));
    let dsp = u32::try_from(lanes * per_mult).unwrap_or(u32::MAX);
    let block_bytes = match device.logic_kind {
        LogicKind::Aluts => ALTERA_M4K_BYTES,
        LogicKind::Slices | LogicKind::Luts => XILINX_BRAM18_BYTES,
    };
    let copies = match buffering {
        Buffering::Single => 1,
        Buffering::Double => 2,
    };
    let bram = (brams_for_buffer(base.input_bytes().get(), block_bytes)
        + brams_for_buffer(base.output_bytes().get(), block_bytes))
        * copies;
    let logic = lanes * u64::from(precision.total_bits()) * LOGIC_CELLS_PER_LANE_BIT
        + CONTROL_OVERHEAD_CELLS;
    ResourceEstimate { dsp, bram, logic }
}

/// One candidate's categorical/continuous coordinates, as indices into the
/// resolved axis lists.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    fclock_hz: f64,
    throughput_proc: f64,
    buf: usize,
    dev: usize,
    prec: usize,
}

/// Per-axis sampling state of the cross-entropy search.
struct SearchState {
    mean: [f64; 2],
    sigma: [f64; 2],
    lo: [f64; 2],
    hi: [f64; 2],
    /// Laplace-smoothed elite frequencies per categorical axis
    /// (buffering, device, precision).
    weights: [Vec<f64>; 3],
}

impl SearchState {
    fn new(space: &OptimizeSpace, n_buf: usize, n_dev: usize, n_prec: usize) -> Self {
        let (flo, fhi) = space.fclock_hz;
        let (tlo, thi) = space.throughput_proc;
        SearchState {
            mean: [0.5 * (flo + fhi), 0.5 * (tlo + thi)],
            sigma: [0.25 * (fhi - flo), 0.25 * (thi - tlo)],
            lo: [flo, tlo],
            hi: [fhi, thi],
            weights: [vec![1.0; n_buf], vec![1.0; n_dev], vec![1.0; n_prec]],
        }
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> Candidate {
        // Fixed draw order (two Gaussians, three categorical picks) keeps
        // the per-generation stream layout independent of everything else.
        let z0 = gaussian(rng);
        let z1 = gaussian(rng);
        let fclock_hz = (self.mean[0] + self.sigma[0] * z0).clamp(self.lo[0], self.hi[0]);
        let throughput_proc = (self.mean[1] + self.sigma[1] * z1).clamp(self.lo[1], self.hi[1]);
        let buf = pick(rng, &self.weights[0]);
        let dev = pick(rng, &self.weights[1]);
        let prec = pick(rng, &self.weights[2]);
        Candidate {
            fclock_hz,
            throughput_proc,
            buf,
            dev,
            prec,
        }
    }

    /// Adapt the distribution toward the elite set (cross-entropy update):
    /// continuous axes take the elite mean and (expanded, floored) standard
    /// deviation; categorical axes take Laplace-smoothed elite frequencies.
    fn adapt(&mut self, elites: &[&Candidate]) {
        if elites.is_empty() {
            return;
        }
        let n = elites.len() as f64;
        for axis in 0..2 {
            let coord = |c: &Candidate| match axis {
                0 => c.fclock_hz,
                _ => c.throughput_proc,
            };
            let mean = elites.iter().map(|c| coord(c)).sum::<f64>() / n;
            let var = elites
                .iter()
                .map(|c| (coord(c) - mean).powi(2))
                .sum::<f64>()
                / n;
            let range = self.hi[axis] - self.lo[axis];
            self.mean[axis] = mean;
            self.sigma[axis] =
                (var.sqrt() * SIGMA_EXPAND).clamp(SIGMA_RANGE_FLOOR * range, 0.5 * range.max(0.0));
        }
        let selectors: [fn(&Candidate) -> usize; 3] = [|c| c.buf, |c| c.dev, |c| c.prec];
        for (axis, idx_of) in selectors.into_iter().enumerate() {
            let w = &mut self.weights[axis];
            w.iter_mut().for_each(|x| *x = 1.0);
            for c in elites {
                w[idx_of(c)] += 1.0;
            }
        }
    }
}

/// A standard normal draw via Box–Muller: two uniform draws per Gaussian, so
/// the stream layout is fixed.
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen();
    let u2: f64 = rng.gen();
    (-2.0 * (1.0 - u1).ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Weighted categorical pick: one uniform draw walked against the cumulative
/// weights. Deterministic for a given stream position.
fn pick(rng: &mut ChaCha8Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u: f64 = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u < 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Run the guided search.
///
/// Each generation draws `config.population` candidates from the adapted
/// distribution (per-generation stream [`job_rng`]`(seed, generation)`),
/// evaluates them all through [`solve_batch`] chunks sized by
/// [`Engine::chunk_len`] on `engine`'s warm pool, gates them through the
/// Eq. (9)–(11) resource test, folds the feasible ones into the running
/// Pareto front, and adapts toward the highest-speedup feasible elite.
///
/// Errors: invalid axes/knobs report the offending field; a space where *no*
/// evaluated candidate passes the resource test is [`RatError::Infeasible`]
/// (CLI exit 4, HTTP 422).
pub fn optimize(
    engine: &Engine,
    space: &OptimizeSpace,
    config: &OptimizeConfig,
) -> Result<OptimizeOutcome, RatError> {
    let _span = telemetry::span("optimize");
    space.validate()?;
    config.validate()?;
    let bufs = space.resolved_bufferings();
    let devs = space.resolved_devices();
    let precs = space.resolved_precisions();
    if devs.is_empty() {
        return Err(RatError::quantity(
            "devices",
            "no candidate devices resolved".to_string(),
        ));
    }
    if precs.is_empty() {
        return Err(RatError::quantity(
            "precisions",
            "no candidate precisions resolved".to_string(),
        ));
    }

    let mut state = SearchState::new(space, bufs.len(), devs.len(), precs.len());
    let mut front: Vec<FrontPoint> = Vec::new();
    let mut visited: Vec<Objectives> = Vec::new();
    let mut evals = 0u64;
    let mut feasible_evals = 0u64;

    for generation in 0..config.generations {
        let mut rng = job_rng(config.seed, u64::from(generation));
        let candidates: Vec<Candidate> = (0..config.population)
            .map(|_| state.sample(&mut rng))
            .collect();
        let reports = evaluate(engine, &space.base, &bufs, &candidates)?;
        evals += candidates.len() as u64;
        telemetry::add(Metric::OptimizeGenerations, 1);
        telemetry::add(Metric::OptimizeEvals, candidates.len() as u64);

        let mut gen_feasible: Vec<(usize, f64)> = Vec::new();
        for (i, (cand, report)) in candidates.iter().zip(&reports).enumerate() {
            let estimate = estimate_candidate(
                &space.base,
                cand.throughput_proc,
                bufs[cand.buf],
                precs[cand.prec],
                &devs[cand.dev],
            );
            let resources = ResourceReport::analyze(devs[cand.dev].clone(), estimate);
            if !resources.fits {
                continue;
            }
            feasible_evals += 1;
            let objectives = Objectives {
                speedup: report.speedup,
                util_comp: report.throughput.util_comp,
                resource_frac: resources
                    .dsp_util
                    .max(resources.bram_util)
                    .max(resources.logic_util),
            };
            visited.push(objectives);
            gen_feasible.push((i, report.speedup));
            fold_into_front(&mut front, objectives, || FrontPoint {
                report: report.clone(),
                device: devs[cand.dev].clone(),
                precision: precs[cand.prec],
                resources: resources.clone(),
                objectives,
                generation,
            });
        }

        // Elite update: highest feasible speedup first, index-tiebroken.
        gen_feasible.sort_by(|(ia, sa), (ib, sb)| sb.total_cmp(sa).then(ia.cmp(ib)));
        let elite_n = (config.population / ELITE_FRACTION).max(1);
        let elites: Vec<&Candidate> = gen_feasible
            .iter()
            .take(elite_n)
            .map(|&(i, _)| &candidates[i])
            .collect();
        state.adapt(&elites);
    }

    if front.is_empty() {
        return Err(RatError::infeasible(format!(
            "no feasible design point: 0 of {evals} candidates passed the Eq. (9)-(11) resource \
             test on {} candidate device(s) with {} precision candidate(s) — widen `devices`, \
             `precisions`, or lower `throughput_range`",
            devs.len(),
            precs.len()
        )));
    }

    front.sort_by(|a, b| {
        b.objectives
            .speedup
            .total_cmp(&a.objectives.speedup)
            .then(b.objectives.util_comp.total_cmp(&a.objectives.util_comp))
            .then(
                a.objectives
                    .resource_frac
                    .total_cmp(&b.objectives.resource_frac),
            )
    });
    telemetry::add(Metric::OptimizeFrontSize, front.len() as u64);

    Ok(OptimizeOutcome {
        seed: config.seed,
        generations: config.generations,
        evals,
        feasible_evals,
        front,
        visited,
    })
}

/// Fold one feasible point into the running non-dominated set. The front
/// admits a point iff no member dominates or ties it, then evicts members
/// the newcomer dominates — so it is exactly the non-dominated set of
/// everything folded so far, with first-seen points winning ties.
fn fold_into_front(
    front: &mut Vec<FrontPoint>,
    objectives: Objectives,
    make: impl FnOnce() -> FrontPoint,
) {
    if front
        .iter()
        .any(|f| f.objectives.dominates(&objectives) || f.objectives.ties(&objectives))
    {
        return;
    }
    front.retain(|f| !objectives.dominates(&f.objectives));
    front.push(make());
}

/// Evaluate every candidate's throughput report, batched: candidates
/// partition by buffering discipline (a base-level property of a batch —
/// same shape as [`crate::explore::explore`]), and each partition is split
/// into [`Engine::chunk_len`]-sized [`solve_batch`] jobs on the engine.
/// Reports come back indexed by candidate; the lowest-indexed failing chunk
/// wins error reporting.
fn evaluate(
    engine: &Engine,
    base: &RatInput,
    bufs: &[Buffering],
    candidates: &[Candidate],
) -> Result<Vec<Report>, RatError> {
    let mut out: Vec<Option<Report>> = vec![None; candidates.len()];
    for buffering in [Buffering::Single, Buffering::Double] {
        let idx: Vec<usize> = (0..candidates.len())
            .filter(|&i| bufs[candidates[i].buf] == buffering)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let b = base.with_buffering(buffering);
        let fcol: Vec<f64> = idx.iter().map(|&i| candidates[i].fclock_hz).collect();
        let tcol: Vec<f64> = idx.iter().map(|&i| candidates[i].throughput_proc).collect();
        let chunk = engine.chunk_len(idx.len(), PointCost::FullReport);
        let chunks = idx.len().div_ceil(chunk);
        let per_chunk = engine.try_run(chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(idx.len());
            let mut batch = BatchPoints::new(&b, hi - lo);
            batch.push_column(SweepParam::Fclock, &fcol[lo..hi]);
            batch.push_column(SweepParam::ThroughputProc, &tcol[lo..hi]);
            solve_batch(&batch)
        })?;
        for (k, report) in per_chunk.into_iter().flatten().enumerate() {
            out[idx[k]] = Some(report);
        }
    }
    // Every candidate belongs to exactly one partition, so every slot is
    // filled; collect defensively all the same.
    out.into_iter()
        .collect::<Option<Vec<Report>>>()
        .ok_or_else(|| RatError::quantity("candidates", "evaluation dropped a point".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;
    use crate::resources::device::{virtex4_lx100, virtex4_lx25};
    use crate::worksheet::Worksheet;

    fn quick_config() -> OptimizeConfig {
        OptimizeConfig {
            seed: 2007,
            generations: 8,
            population: 64,
        }
    }

    #[test]
    fn smoke_finds_a_nonempty_feasible_front() {
        let engine = Engine::sequential();
        let space = OptimizeSpace::around(pdf1d_example());
        let out = optimize(&engine, &space, &quick_config()).unwrap();
        assert!(!out.front.is_empty());
        assert_eq!(out.evals, 8 * 64);
        assert!(out.feasible_evals > 0);
        for p in &out.front {
            assert!(p.resources.fits, "front member must pass the resource test");
            assert!(p.objectives.speedup > 0.0);
        }
        // Ranked by speedup, best first.
        for w in out.front.windows(2) {
            assert!(w[0].objectives.speedup >= w[1].objectives.speedup);
        }
        assert_eq!(
            out.best().objectives.speedup,
            out.front[0].objectives.speedup
        );
    }

    #[test]
    fn front_members_replay_through_the_scalar_worksheet() {
        let engine = Engine::sequential();
        let space = OptimizeSpace::around(pdf1d_example());
        let out = optimize(&engine, &space, &quick_config()).unwrap();
        for p in &out.front {
            let scalar = Worksheet::new(p.report.input.clone()).analyze().unwrap();
            assert_eq!(
                scalar, p.report,
                "front member diverged from scalar analyze"
            );
        }
    }

    #[test]
    fn front_is_mutually_non_dominated_and_covers_visited_points() {
        let engine = Engine::sequential();
        let space = OptimizeSpace::around(pdf1d_example());
        let out = optimize(&engine, &space, &quick_config()).unwrap();
        for (i, a) in out.front.iter().enumerate() {
            for (j, b) in out.front.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.objectives.dominates(&b.objectives),
                        "front member {i} dominates {j}"
                    );
                }
            }
        }
        for v in &out.visited {
            assert!(
                out.front
                    .iter()
                    .any(|f| f.objectives.dominates(v) || f.objectives.ties(v)),
                "visited point {v:?} not covered by the front"
            );
            assert!(
                !out.front.iter().any(|f| v.dominates(&f.objectives)),
                "visited point {v:?} dominates a front member"
            );
        }
    }

    #[test]
    fn same_seed_same_front_different_seed_different_search() {
        let engine = Engine::sequential();
        let space = OptimizeSpace::around(pdf1d_example());
        let a = optimize(&engine, &space, &quick_config()).unwrap();
        let b = optimize(&engine, &space, &quick_config()).unwrap();
        assert_eq!(a, b);
        let other = OptimizeConfig {
            seed: 42,
            ..quick_config()
        };
        let c = optimize(&engine, &space, &other).unwrap();
        // Different seeds visit different candidate sets.
        assert_ne!(a.visited, c.visited);
    }

    #[test]
    fn degenerate_single_point_space_works() {
        let engine = Engine::sequential();
        let base = pdf1d_example();
        let space = OptimizeSpace {
            fclock_hz: (150.0e6, 150.0e6),
            throughput_proc: (20.0, 20.0),
            bufferings: vec![Buffering::Single],
            devices: vec![virtex4_lx100()],
            precisions: vec![QFormat::signed(0, 17).unwrap()],
            base,
        };
        let cfg = OptimizeConfig {
            seed: 1,
            generations: 2,
            population: 4,
        };
        let out = optimize(&engine, &space, &cfg).unwrap();
        assert_eq!(
            out.front.len(),
            1,
            "single-candidate space has a 1-point front"
        );
        assert_eq!(out.front[0].report.input.comp.throughput_proc, 20.0);
    }

    #[test]
    fn empty_and_nonpositive_ranges_name_the_field() {
        let engine = Engine::sequential();
        let mut space = OptimizeSpace::around(pdf1d_example());
        space.fclock_hz = (150.0e6, 75.0e6);
        let err = optimize(&engine, &space, &quick_config()).unwrap_err();
        assert!(err.to_string().contains("fclock_range"), "{err}");

        let mut space = OptimizeSpace::around(pdf1d_example());
        space.throughput_proc = (0.0, 4.0);
        let err = optimize(&engine, &space, &quick_config()).unwrap_err();
        assert!(err.to_string().contains("throughput_range"), "{err}");

        let mut space = OptimizeSpace::around(pdf1d_example());
        space.fclock_hz = (f64::NAN, 150.0e6);
        let err = optimize(&engine, &space, &quick_config()).unwrap_err();
        assert!(err.to_string().contains("fclock_range"), "{err}");
    }

    #[test]
    fn all_infeasible_space_reports_infeasible() {
        let engine = Engine::sequential();
        let mut space = OptimizeSpace::around(pdf1d_example());
        // 256 lanes of 32-bit multipliers cannot fit the smallest device.
        space.throughput_proc = (200.0, 256.0);
        space.devices = vec![virtex4_lx25()];
        space.precisions = vec![QFormat::signed(0, 31).unwrap()];
        let err = optimize(&engine, &space, &quick_config()).unwrap_err();
        assert!(
            matches!(err, RatError::Infeasible { .. }),
            "expected Infeasible, got {err:?}"
        );
        assert!(err.to_string().contains("resource test"), "{err}");
    }

    #[test]
    fn zero_generations_and_population_are_rejected() {
        let engine = Engine::sequential();
        let space = OptimizeSpace::around(pdf1d_example());
        for cfg in [
            OptimizeConfig {
                generations: 0,
                ..quick_config()
            },
            OptimizeConfig {
                population: 0,
                ..quick_config()
            },
        ] {
            let err = optimize(&engine, &space, &cfg).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("generations") || msg.contains("population"),
                "{msg}"
            );
        }
    }

    #[test]
    fn estimate_scales_with_lanes_precision_and_buffering() {
        let base = pdf1d_example();
        let dev = virtex4_lx100();
        let q18 = QFormat::signed(0, 17).unwrap();
        let q32 = QFormat::signed(0, 31).unwrap();
        let narrow = estimate_candidate(&base, 8.0, Buffering::Single, q18, &dev);
        // One 18-bit mult per lane on an 18-bit-native device.
        assert_eq!(narrow.dsp, 8);
        let wide = estimate_candidate(&base, 8.0, Buffering::Single, q32, &dev);
        // The paper's rule: 32-bit fixed-point multiplies cost two DSPs.
        assert_eq!(wide.dsp, 16);
        // Fractional parallelism still needs whole lanes.
        let frac = estimate_candidate(&base, 7.3, Buffering::Single, q18, &dev);
        assert_eq!(frac.dsp, 8);
        // Double buffering doubles the block-RAM footprint.
        let sb = estimate_candidate(&base, 8.0, Buffering::Single, q18, &dev);
        let db = estimate_candidate(&base, 8.0, Buffering::Double, q18, &dev);
        assert_eq!(db.bram, 2 * sb.bram);
        assert!(wide.logic > narrow.logic);
    }

    #[test]
    fn dominance_is_irreflexive_and_directional() {
        let a = Objectives {
            speedup: 10.0,
            util_comp: 0.8,
            resource_frac: 0.5,
        };
        assert!(!a.dominates(&a));
        assert!(a.ties(&a));
        let worse = Objectives {
            speedup: 9.0,
            util_comp: 0.8,
            resource_frac: 0.6,
        };
        assert!(a.dominates(&worse));
        assert!(!worse.dominates(&a));
        let tradeoff = Objectives {
            speedup: 12.0,
            util_comp: 0.7,
            resource_frac: 0.9,
        };
        assert!(!a.dominates(&tradeoff));
        assert!(!tradeoff.dominates(&a));
    }
}
