//! Minimal aligned-column text tables for worksheet reports.
//!
//! The paper presents everything as small tables (input parameters,
//! predicted-vs-actual performance, resource usage); this renderer produces
//! the same artifacts on a terminal without pulling in a formatting crate.

/// A simple text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: Option<String>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the table title (rendered above the header).
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Set the header cells.
    pub fn header<S: Into<String>>(mut self, cells: impl IntoIterator<Item = S>) -> Self {
        self.header = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Append one row. Rows may be ragged; short rows pad with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Append a full-width section label row.
    pub fn section(&mut self, label: impl Into<String>) -> &mut Self {
        self.rows.push(vec![format!("-- {} --", label.into())]);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render with single-space-padded, left-aligned columns separated by two
    /// spaces.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        if cols == 0 {
            return String::new();
        }
        let mut widths = vec![0usize; cols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows.clone() {
            // Full-width section rows don't participate in column sizing.
            if row.len() == 1 && cols > 1 && row[0].starts_with("-- ") {
                continue;
            }
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let render_row = |row: &[String]| -> String {
            if row.len() == 1 && cols > 1 && row[0].starts_with("-- ") {
                return row[0].clone();
            }
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == cols {
                    line.push_str(cell);
                } else {
                    line.push_str(&format!("{cell:<w$}"));
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&render_row(&self.header));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl TextTable {
    /// Render as a GitHub-flavored-Markdown table. Section rows become bold
    /// full-width cells; the title becomes a `###` heading.
    pub fn render_markdown(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        if cols == 0 {
            return String::new();
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(&format!("### {t}\n\n"));
        }
        let escape = |s: &str| s.replace('|', "\\|");
        let row_line = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                line.push_str(&format!(
                    " {} |",
                    escape(cells.get(i).map(String::as_str).unwrap_or(""))
                ));
            }
            line
        };
        if self.header.is_empty() {
            out.push_str(&row_line(&vec![String::new(); cols]));
        } else {
            out.push_str(&row_line(&self.header));
        }
        out.push('\n');
        out.push_str(&format!("|{}\n", "---|".repeat(cols)));
        for row in &self.rows {
            if row.len() == 1 && cols > 1 && row[0].starts_with("-- ") {
                let label = row[0].trim_matches(|c| c == '-' || c == ' ');
                let mut cells = vec![format!("**{label}**")];
                cells.resize(cols, String::new());
                out.push_str(&row_line(&cells));
            } else {
                out.push_str(&row_line(row));
            }
            out.push('\n');
        }
        out
    }
}

/// Format a quantity in engineering scientific notation with 3 significant
/// digits, e.g. `5.56e-6` — the paper's table style.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    format!("{v:.2e}")
}

/// Format a ratio as a percentage with no decimals (e.g. `4%`), or one decimal
/// below 1% — matching the paper's utilization rows.
pub fn pct(v: f64) -> String {
    let p = v * 100.0;
    if p >= 1.0 {
        format!("{p:.0}%")
    } else {
        format!("{p:.1}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_rule_and_rows() {
        let mut t = TextTable::new().title("Demo").header(["a", "bb", "ccc"]);
        t.row(["1", "2", "3"]);
        t.row(["10", "20", "30"]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].starts_with("a"));
        assert!(lines[2].chars().all(|c| c == '-'));
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn columns_align() {
        let mut t = TextTable::new().header(["name", "value"]);
        t.row(["x", "1"]);
        t.row(["longer-name", "2"]);
        let s = t.render();
        let data_lines: Vec<_> = s.lines().skip(2).collect();
        let col1 = data_lines[0].find('1').unwrap();
        let col2 = data_lines[1].find('2').unwrap();
        assert_eq!(col1, col2, "value column should align:\n{s}");
    }

    #[test]
    fn ragged_rows_pad() {
        let mut t = TextTable::new().header(["a", "b"]);
        t.row(["only"]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn section_rows_span() {
        let mut t = TextTable::new().header(["param", "value"]);
        t.section("Dataset Parameters");
        t.row(["elements", "512"]);
        let s = t.render();
        assert!(s.contains("-- Dataset Parameters --"));
    }

    #[test]
    fn empty_table_renders_empty() {
        assert_eq!(TextTable::new().render(), "");
    }

    #[test]
    fn markdown_rendering() {
        let mut t = TextTable::new().title("Demo").header(["Param", "Value"]);
        t.section("Dataset");
        t.row(["elements", "512"]);
        t.row(["pipe|char", "x"]);
        let s = t.render_markdown();
        assert!(s.starts_with("### Demo"));
        assert!(s.contains("| Param | Value |"));
        assert!(s.contains("|---|---|"));
        assert!(s.contains("| **Dataset** |  |"));
        assert!(s.contains("pipe\\|char"), "pipes must be escaped:\n{s}");
        // Every table line has a consistent pipe count.
        for line in s.lines().filter(|l| l.starts_with('|')) {
            assert_eq!(
                line.matches('|').count() - line.matches("\\|").count(),
                3,
                "{line}"
            );
        }
    }

    #[test]
    fn markdown_empty_table() {
        assert_eq!(TextTable::new().render_markdown(), "");
    }

    #[test]
    fn sci_and_pct_formatting() {
        assert_eq!(sci(5.56e-6), "5.56e-6");
        assert_eq!(sci(0.0), "0");
        assert_eq!(pct(0.04), "4%");
        assert_eq!(pct(0.152), "15%");
        assert_eq!(pct(0.004), "0.4%");
    }
}
