//! The RAT worksheet.
//!
//! §4 of the paper: *"a worksheet can be constructed based upon Equations (1)
//! through (11). Users simply provide the input parameters and the resulting
//! performance values are returned."* [`Worksheet`] is that artifact: input
//! parameters in, a [`Report`] out.

use crate::error::RatError;
use crate::params::{Buffering, RatInput};
use crate::quantity::Freq;
use crate::report::Report;
use crate::solve::{self, stages};
use crate::throughput::ThroughputPrediction;

/// A RAT worksheet: wraps an input and produces the full analysis.
#[derive(Debug, Clone)]
pub struct Worksheet {
    input: RatInput,
}

impl Worksheet {
    /// Create a worksheet over `input`.
    pub fn new(input: RatInput) -> Self {
        Self { input }
    }

    /// The worksheet's input.
    pub fn input(&self) -> &RatInput {
        &self.input
    }

    /// Run the throughput test and assemble the report.
    ///
    /// This is the staged path: each sub-model is resolved through the
    /// memoized stage graph ([`crate::solve::stages`]), so repeated analyses
    /// that share sub-inputs (a clock sweep, a `rat watch` re-render) only
    /// recompute the stages whose inputs actually changed. Bit-identical to
    /// [`Worksheet::analyze_monolithic`] — the differential suite pins it.
    pub fn analyze(&self) -> Result<Report, RatError> {
        self.input.validate()?;
        let comm = stages::comm_stage(&self.input);
        let comp = stages::comp_stage(&self.input);
        let overlap = stages::overlap_stage(&self.input, comm.t_comm, comp);
        let sp = stages::speedup_stage(&self.input, &overlap, comm.t_comm);
        let single = ThroughputPrediction {
            t_write: comm.t_write,
            t_read: comm.t_read,
            t_comm: comm.t_comm,
            t_comp: comp,
            t_rc: overlap.t_rc_single,
            speedup: sp.speedup_single,
            util_comm: overlap.util_comm_single,
            util_comp: overlap.util_comp_single,
            buffering: Buffering::Single,
        };
        let double = ThroughputPrediction {
            t_write: comm.t_write,
            t_read: comm.t_read,
            t_comm: comm.t_comm,
            t_comp: comp,
            t_rc: overlap.t_rc_double,
            speedup: sp.speedup_double,
            util_comm: overlap.util_comm_double,
            util_comp: overlap.util_comp_double,
            buffering: Buffering::Double,
        };
        let (throughput, alternate) = match self.input.buffering {
            Buffering::Single => (single, double),
            Buffering::Double => (double, single),
        };
        Ok(Report {
            speedup: throughput.speedup,
            throughput,
            alternate,
            max_speedup: sp.max_speedup,
            input: self.input.clone(),
        })
    }

    /// The original unmemoized chain, kept as the differential reference:
    /// recomputes every equation from scratch through
    /// [`ThroughputPrediction::analyze`] and [`solve::max_speedup`].
    pub fn analyze_monolithic(&self) -> Result<Report, RatError> {
        let throughput = ThroughputPrediction::analyze(&self.input)?;
        let other_mode = match self.input.buffering {
            Buffering::Single => Buffering::Double,
            Buffering::Double => Buffering::Single,
        };
        let alternate = ThroughputPrediction::analyze(&self.input.with_buffering(other_mode))?;
        let max_speedup = solve::max_speedup(&self.input)?;
        Ok(Report {
            speedup: throughput.speedup,
            throughput,
            alternate,
            max_speedup,
            input: self.input.clone(),
        })
    }

    /// Analyze the same design across several clock frequencies — the paper's
    /// Tables 3/6/9 columns (75/100/150 MHz). Returns one report per frequency,
    /// in order.
    pub fn analyze_clocks(&self, fclocks: &[Freq]) -> Result<Vec<Report>, RatError> {
        fclocks
            .iter()
            .map(|&f| Worksheet::new(self.input.with_fclock(f)).analyze())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;

    #[test]
    fn analyze_produces_consistent_report() {
        let r = Worksheet::new(pdf1d_example()).analyze().unwrap();
        assert_eq!(r.speedup, r.throughput.speedup);
        assert_eq!(r.throughput.buffering, Buffering::Single);
        assert_eq!(r.alternate.buffering, Buffering::Double);
        assert!(r.alternate.speedup >= r.throughput.speedup);
        assert!(r.max_speedup > r.alternate.speedup);
    }

    #[test]
    fn analyze_clocks_matches_table3_columns() {
        let ws = Worksheet::new(pdf1d_example());
        let clocks = [75.0, 100.0, 150.0].map(Freq::from_mhz);
        let reports = ws.analyze_clocks(&clocks).unwrap();
        let speedups: Vec<f64> = reports.iter().map(|r| r.speedup).collect();
        // Table 3 reports 5.4 / 7.2 / 10.6; the exact 100 MHz figure is 7.148,
        // which the paper rounds up.
        for (got, want) in speedups.iter().zip([5.4, 7.2, 10.6]) {
            assert!(
                (got - want).abs() < 0.06,
                "speedup {got} vs Table 3's {want}"
            );
        }
    }

    #[test]
    fn staged_analyze_matches_monolithic_bit_for_bit() {
        for buffering in [Buffering::Single, Buffering::Double] {
            let ws = Worksheet::new(pdf1d_example().with_buffering(buffering));
            let staged = ws.analyze().unwrap();
            let mono = ws.analyze_monolithic().unwrap();
            assert_eq!(staged, mono);
            // A second run is served from the stage cache — still identical.
            assert_eq!(ws.analyze().unwrap(), mono);
        }
    }

    #[test]
    fn invalid_input_propagates() {
        let mut input = pdf1d_example();
        input.software.iterations = 0;
        assert!(Worksheet::new(input).analyze().is_err());
    }

    #[test]
    fn input_accessor() {
        let input = pdf1d_example();
        let ws = Worksheet::new(input.clone());
        assert_eq!(ws.input(), &input);
    }
}
