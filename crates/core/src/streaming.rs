//! Streaming-application throughput analysis.
//!
//! §3.1: the throughput test "models FPGAs as co-processors to general-purpose
//! processors but the framework can be adjusted for streaming applications."
//! This module is that adjustment. A streaming design never round-trips
//! buffers: data flows through the FPGA continuously, so the sustained rate is
//! the *minimum* of the channel's element rate and the datapath's element
//! rate, and total time is `N / rate` plus a fill latency that vanishes for
//! large N.
//!
//! ```
//! # use rat_core::quantity::{Freq, Seconds, Throughput};
//! # let input = rat_core::params::RatInput {
//! #     name: "demo".into(),
//! #     dataset: rat_core::params::DatasetParams { elements_in: 512, elements_out: 1, bytes_per_element: 4 },
//! #     comm: rat_core::params::CommParams { ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9), alpha_write: 0.37, alpha_read: 0.16 },
//! #     comp: rat_core::params::CompParams { ops_per_element: 768.0, throughput_proc: 20.0, fclock: Freq::from_mhz(150.0) },
//! #     software: rat_core::params::SoftwareParams { t_soft: Seconds::new(0.578), iterations: 400 },
//! #     buffering: rat_core::params::Buffering::Double,
//! # };
//! use rat_core::streaming::{analyze, ChannelDuplex, StreamBottleneck};
//! let s = analyze(&input, ChannelDuplex::Half).unwrap();
//! assert_eq!(s.bottleneck, StreamBottleneck::Compute);
//! assert!(s.speedup > 10.0);
//! ```

use crate::error::RatError;
use crate::params::RatInput;
use crate::quantity::Seconds;
use crate::table::{sci, TextTable};
use serde::{Deserialize, Serialize};

/// Whether the interconnect can move input and output concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ChannelDuplex {
    /// One shared channel: input and output bytes serialize (PCI-X, and the
    /// assumption behind the paper's Eq. (1)).
    #[default]
    Half,
    /// Independent input and output paths (full-duplex links such as
    /// HyperTransport or PCIe): the slower direction limits.
    Full,
}

/// What limits a streaming design's sustained rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamBottleneck {
    /// The interconnect: elements arrive/depart slower than the datapath
    /// consumes them.
    Channel,
    /// The datapath: the FPGA kernel is the limiting rate.
    Compute,
}

/// Outputs of the streaming throughput test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingPrediction {
    /// Element rate the input path sustains (elements/s).
    pub input_rate: f64,
    /// Element rate the output path sustains (elements/s);
    /// `f64::INFINITY` when the design emits nothing per element.
    pub output_rate: f64,
    /// Combined channel element rate under the duplex assumption.
    pub channel_rate: f64,
    /// Element rate the datapath sustains (elements/s).
    pub compute_rate: f64,
    /// Sustained end-to-end rate: `min(channel_rate, compute_rate)`.
    pub sustained_rate: f64,
    /// Which side limits.
    pub bottleneck: StreamBottleneck,
    /// Time to stream the whole dataset (`elements_in * iterations` elements).
    pub t_stream: Seconds,
    /// Speedup over the software baseline.
    pub speedup: f64,
    /// Duplex assumption used.
    pub duplex: ChannelDuplex,
}

impl StreamingPrediction {
    /// Fraction of channel capacity the stream consumes (1.0 when
    /// channel-bound) — the headroom left for other traffic.
    pub fn channel_utilization(&self) -> f64 {
        self.sustained_rate / self.channel_rate
    }

    /// Fraction of datapath capacity in use (1.0 when compute-bound).
    pub fn compute_utilization(&self) -> f64 {
        self.sustained_rate / self.compute_rate
    }

    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title("Streaming throughput prediction")
            .header(["Metric", "Value"]);
        t.row(["input rate (elts/s)".to_string(), sci(self.input_rate)]);
        t.row(["output rate (elts/s)".to_string(), sci(self.output_rate)]);
        t.row(["channel rate (elts/s)".to_string(), sci(self.channel_rate)]);
        t.row(["compute rate (elts/s)".to_string(), sci(self.compute_rate)]);
        t.row([
            "sustained rate (elts/s)".to_string(),
            sci(self.sustained_rate),
        ]);
        t.row([
            "bottleneck".to_string(),
            match self.bottleneck {
                StreamBottleneck::Channel => "channel".to_string(),
                StreamBottleneck::Compute => "compute".to_string(),
            },
        ]);
        t.row(["t_stream (sec)".to_string(), sci(self.t_stream.seconds())]);
        t.row(["speedup".to_string(), format!("{:.2}", self.speedup)]);
        t.render()
    }
}

/// Run the streaming throughput test over the same Table-1 parameters the
/// buffered test uses. The dataset is `elements_in * iterations` elements;
/// per-element byte and op costs come straight from the worksheet.
pub fn analyze(input: &RatInput, duplex: ChannelDuplex) -> Result<StreamingPrediction, RatError> {
    input.validate()?;
    let bytes_in = input.dataset.bytes_per_element as f64;
    // Output bytes *per input element*: the design emits
    // elements_out / elements_in output elements for each input element.
    let out_ratio = input.dataset.elements_out as f64 / input.dataset.elements_in as f64;
    let bytes_out = out_ratio * input.dataset.bytes_per_element as f64;

    let input_rate =
        (input.comm.alpha_write * input.comm.ideal_bandwidth).bytes_per_sec() / bytes_in;
    let output_rate = if bytes_out == 0.0 {
        f64::INFINITY
    } else {
        (input.comm.alpha_read * input.comm.ideal_bandwidth).bytes_per_sec() / bytes_out
    };
    let channel_rate = match duplex {
        // Serialized: per-element time adds.
        ChannelDuplex::Half => {
            1.0 / (1.0 / input_rate
                + if bytes_out == 0.0 {
                    0.0
                } else {
                    1.0 / output_rate
                })
        }
        ChannelDuplex::Full => input_rate.min(output_rate),
    };
    let compute_rate =
        (input.comp.fclock * input.comp.throughput_proc).hz() / input.comp.ops_per_element;
    let sustained_rate = channel_rate.min(compute_rate);
    let bottleneck = if channel_rate <= compute_rate {
        StreamBottleneck::Channel
    } else {
        StreamBottleneck::Compute
    };
    let total_elements = (input.dataset.elements_in * input.software.iterations) as f64;
    let t_stream = Seconds::new(total_elements / sustained_rate);
    Ok(StreamingPrediction {
        input_rate,
        output_rate,
        channel_rate,
        compute_rate,
        sustained_rate,
        bottleneck,
        t_stream,
        speedup: input.software.t_soft / t_stream,
        duplex,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;
    use crate::throughput;

    #[test]
    fn pdf1d_streams_faster_than_buffered() {
        // Streaming removes the serialize-then-compute round trip; for the
        // compute-bound 1-D PDF the stream rate equals the datapath rate and
        // total time beats even the double-buffered Eq. (6) slightly (no
        // first-iteration fill in the continuum model).
        let input = pdf1d_example();
        let s = analyze(&input, ChannelDuplex::Half).unwrap();
        assert_eq!(s.bottleneck, StreamBottleneck::Compute);
        let db = throughput::t_rc_double(&input);
        assert!(s.t_stream <= db * 1.001, "stream {} vs DB {db}", s.t_stream);
        assert!(s.speedup >= 10.9, "streaming speedup {}", s.speedup);
    }

    #[test]
    fn compute_rate_matches_eq4_per_element() {
        let input = pdf1d_example();
        let s = analyze(&input, ChannelDuplex::Half).unwrap();
        // Eq. (4) per element: ops/elt / (fclock * tp) seconds per element.
        let per_elt = (input.comp.ops_per_element
            / (input.comp.fclock * input.comp.throughput_proc))
            .seconds();
        assert!((s.compute_rate - 1.0 / per_elt).abs() / s.compute_rate < 1e-12);
    }

    #[test]
    fn channel_bound_stream() {
        // Inflate per-element work the channel must carry: 4 KB elements.
        let mut input = pdf1d_example();
        input.dataset.bytes_per_element = 4096;
        input.dataset.elements_out = input.dataset.elements_in; // echo out
        let s = analyze(&input, ChannelDuplex::Half).unwrap();
        assert_eq!(s.bottleneck, StreamBottleneck::Channel);
        assert!((s.channel_utilization() - 1.0).abs() < 1e-12);
        assert!(s.compute_utilization() < 1.0);
    }

    #[test]
    fn full_duplex_beats_half_duplex_when_both_directions_matter() {
        let mut input = pdf1d_example();
        input.dataset.elements_out = input.dataset.elements_in;
        let half = analyze(&input, ChannelDuplex::Half).unwrap();
        let full = analyze(&input, ChannelDuplex::Full).unwrap();
        assert!(full.channel_rate > half.channel_rate);
        // With no output, duplex does not matter.
        let mut quiet = pdf1d_example();
        quiet.dataset.elements_out = 0;
        let h = analyze(&quiet, ChannelDuplex::Half).unwrap();
        let f = analyze(&quiet, ChannelDuplex::Full).unwrap();
        assert!((h.channel_rate - f.channel_rate).abs() / h.channel_rate < 1e-12);
    }

    #[test]
    fn zero_output_rate_is_infinite() {
        let mut input = pdf1d_example();
        input.dataset.elements_out = 0;
        let s = analyze(&input, ChannelDuplex::Half).unwrap();
        assert_eq!(s.output_rate, f64::INFINITY);
    }

    #[test]
    fn render_names_the_bottleneck() {
        let s = analyze(&pdf1d_example(), ChannelDuplex::Half).unwrap();
        assert!(s.render().contains("compute"));
    }

    #[test]
    fn invalid_input_rejected() {
        let mut input = pdf1d_example();
        input.comm.alpha_write = 0.0;
        assert!(analyze(&input, ChannelDuplex::Half).is_err());
    }
}
