//! Deterministic per-job RNG streams.
//!
//! A parallel Monte-Carlo analysis must not let thread scheduling touch its
//! random numbers: results have to be bit-identical whether the engine runs
//! on one thread or sixteen, and whether a given sample executed first or
//! last. The fix is to derive each job's RNG from `(root_seed, job_index)`
//! alone — never from a shared stream that jobs consume in completion order.
//!
//! The derivation is `seed_from_u64(mix(root_seed) ^ job_index)`. The mix
//! step (a splitmix64 finalizer) matters: with a raw `root ^ index`, two
//! root seeds differing in low bits — 42 and 43, say — would produce the
//! *same set* of job seeds in permuted order (`42 ^ j == 43 ^ (j ^ 1)`),
//! making every order-insensitive statistic identical across "different"
//! seeds. Mixing the root first puts different analyses in unrelated regions
//! of seed space, while jobs within one analysis stay a dense, collision-free
//! `base ^ j` family. `seed_from_u64` then expands each value through
//! rand_core's PCG32 construction before it keys ChaCha8.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// splitmix64's finalizer: a bijective avalanche mix over `u64`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG stream for job `job_index` of an analysis rooted at `root_seed`.
pub fn job_rng(root_seed: u64, job_index: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(mix(root_seed) ^ job_index)
}

/// The number of `u64` draws [`job_rng_first_draws`] yields per stream: one
/// ChaCha block is 16 `u32` words, i.e. eight `next_u64` results.
pub const FIRST_BLOCK_DRAWS: usize = 8;

/// The first eight `u64` draws of every job stream in `lo..hi`, computed in
/// bulk: entry `i` holds what `job_rng(root_seed, lo + i).next_u64()` would
/// return on its first eight calls, bit for bit. Internally the ChaCha keys
/// for all streams are derived up front (the same PCG32 expansion
/// `seed_from_u64` uses) and the first keystream blocks are produced eight
/// streams at a time through the AVX2 multi-buffer block function — this is
/// the draw phase of batched Monte-Carlo, where per-sample RNG construction
/// would otherwise dominate.
pub fn job_rng_first_draws(root_seed: u64, lo: u64, hi: u64) -> Vec<[u64; FIRST_BLOCK_DRAWS]> {
    let mixed = mix(root_seed);
    let n = (hi - lo) as usize;
    let mut keys: Vec<[u32; 8]> = Vec::with_capacity(n);
    let mut j = lo;
    while j + 4 <= hi {
        keys.extend(rand::seed_words_from_u64_x4([
            mixed ^ j,
            mixed ^ (j + 1),
            mixed ^ (j + 2),
            mixed ^ (j + 3),
        ]));
        j += 4;
    }
    keys.extend((j..hi).map(|j| rand::seed_words_from_u64(mixed ^ j)));
    rand_chacha::chacha8_first_draws(&keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let a: f64 = job_rng(2007, 3).gen();
        let b: f64 = job_rng(2007, 3).gen();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn distinct_jobs_get_distinct_streams() {
        let draws: Vec<u64> = (0..64).map(|j| job_rng(2007, j).gen::<u64>()).collect();
        let mut unique = draws.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), draws.len(), "adjacent job streams collided");
    }

    #[test]
    fn bulk_first_draws_match_per_job_rng_streams() {
        use rand::RngCore;
        // 0..21 covers two full AVX2 groups plus a scalar tail, and a nonzero
        // `lo` checks the offset arithmetic.
        for (lo, hi) in [(0u64, 21u64), (1000, 1013)] {
            let bulk = job_rng_first_draws(2007, lo, hi);
            assert_eq!(bulk.len(), (hi - lo) as usize);
            for (i, draws) in bulk.iter().enumerate() {
                let mut rng = job_rng(2007, lo + i as u64);
                for (d, &got) in draws.iter().enumerate() {
                    assert_eq!(got, rng.next_u64(), "job {} draw {d}", lo + i as u64);
                }
            }
        }
    }

    #[test]
    fn adjacent_root_seeds_do_not_permute_each_other() {
        // The failure mode mix() exists to prevent: without it, root seeds 42
        // and 43 would generate identical job-seed sets in different order.
        let a: Vec<u64> = (0..64).map(|j| job_rng(42, j).gen::<u64>()).collect();
        let mut b: Vec<u64> = (0..64).map(|j| job_rng(43, j).gen::<u64>()).collect();
        let mut a_sorted = a.clone();
        a_sorted.sort_unstable();
        b.sort_unstable();
        assert_ne!(a_sorted, b, "root seeds 42/43 produced permuted streams");
    }
}
