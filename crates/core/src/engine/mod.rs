//! The parallel analysis engine.
//!
//! Every higher-level RAT analysis — a parameter sweep, a sensitivity scan,
//! Monte-Carlo uncertainty propagation, a multi-FPGA scaling study, a
//! `reproduce` artifact batch — decomposes into **independent jobs**: each
//! takes an index, computes in isolation, and yields one result. The engine
//! runs those jobs on a fixed-size thread pool and reassembles results in job
//! order, under two hard guarantees:
//!
//! 1. **Thread-count invariance.** Output is bit-identical at any `jobs`
//!    setting, including 1. Jobs never share mutable state, results are
//!    ordered by job index (not completion), and randomized jobs draw from
//!    per-job RNG streams ([`job_rng`]) derived from `(root_seed, index)` —
//!    never from a stream consumed in scheduling order.
//! 2. **Memoized simulation.** Jobs that execute the platform simulator do so
//!    through [`fpga_sim`-level memoization]: a content hash of the full run
//!    spec keys a cache, so repeated sweep points and re-rendered artifacts
//!    cost a hash lookup instead of a discrete-event simulation. The engine's
//!    [`EngineConfig::use_cache`] flag gates this per analysis.
//!
//! [`fpga_sim`-level memoization]: EngineConfig::use_cache

mod config;
mod counters;
mod pool;
mod stream;

pub use config::EngineConfig;
pub use counters::{EngineCounters, EngineStats};
pub use stream::{job_rng, job_rng_first_draws, FIRST_BLOCK_DRAWS};

use crate::telemetry::{self, ArgValue, Metric};
use pool::WorkerPool;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Upper bound on resident worker threads, whatever `jobs` says: beyond this
/// the batch drivers are bound by memory bandwidth, not thread count, and a
/// runaway `--jobs` must not exhaust the process's thread quota.
const MAX_THREADS: usize = 256;

/// Minimum estimated work per dispatched job, in nanoseconds. Calibrated
/// against the dispatch-overhead Criterion ladder (`hotpath.rs`): one empty
/// job costs on the order of a microsecond of claim/wake/telemetry overhead,
/// so a ~25 µs floor keeps that under a few percent.
pub const MIN_JOB_NANOS: u64 = 25_000;

/// Upper bound on points per chunk, whatever the division says: bounds
/// per-chunk scratch (decoded columns, RNG draw blocks) and keeps the claim
/// loop granular enough to balance uneven progress.
pub const MAX_CHUNK_POINTS: usize = 16_384;

/// How many chunks each worker should see on average; a little
/// oversubscription lets the atomic claim loop absorb scheduling jitter.
const CHUNKS_PER_WORKER: usize = 4;

/// Calibrated per-point evaluation cost classes for [`Engine::chunk_len`].
///
/// The values are coarse nanosecond estimates measured on the `rat bench`
/// scenarios (see BENCH_8.json); they only need to be right within a factor
/// of a few, since they feed a clamp, not a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointCost {
    /// One Monte-Carlo sample on the batched uncertainty path: a handful of
    /// RNG draws plus one lane of the speedup kernel (~tens of ns).
    McSample,
    /// One full solve/report materialization on the sweep and break-even
    /// paths: validation, both bufferings, report assembly (~hundreds of ns).
    FullReport,
}

impl PointCost {
    fn nanos(self) -> u64 {
        match self {
            PointCost::McSample => 50,
            PointCost::FullReport => 300,
        }
    }
}

/// A job-graph executor: runs batches of independent indexed jobs on a
/// resident worker pool, deterministically.
///
/// The pool is spawned lazily on the first parallel batch and stays warm for
/// the engine's lifetime, so long-lived holders (`rat serve` workers, the
/// `rat watch` re-render loop) pay thread startup once, not once per
/// analysis phase. Results are written into a pre-sized buffer by job index
/// — order is a property of the layout, so collection needs no ordered
/// barrier (see [`engine::pool`](self)).
pub struct Engine {
    config: EngineConfig,
    pool: WorkerPool,
    counters: EngineCounters,
}

impl Engine {
    /// Build an engine with `config.jobs` worker threads (0 = one per
    /// hardware thread).
    pub fn new(config: EngineConfig) -> Self {
        let threads = match config.jobs {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n.min(MAX_THREADS),
        };
        Engine {
            config,
            pool: WorkerPool::new(threads),
            counters: EngineCounters::default(),
        }
    }

    /// A single-threaded engine — the reference schedule every other thread
    /// count must reproduce bit-for-bit.
    pub fn sequential() -> Self {
        Self::new(EngineConfig::default().with_jobs(1))
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The number of worker threads jobs actually run on (the submitting
    /// thread included — it participates in every batch).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The number of points one job should cover when an analysis splits
    /// `total` points into indexed chunks for this engine.
    ///
    /// Replaces the old fixed 1024-point chunk: the size adapts so that each
    /// job carries at least [`MIN_JOB_NANOS`] of estimated work (from the
    /// calibrated per-point `cost`) — below that quantum, dispatch overhead
    /// eats the parallel win — while still cutting the batch into a few
    /// chunks per thread so the claim loop can balance load. The result
    /// depends only on `total`, the configured thread count, and compile-time
    /// constants, never on runtime timing, so chunk seams are deterministic;
    /// and since every batch kernel is bit-identical across chunk seams
    /// (pinned by the differential suites), outputs do not depend on the
    /// chunk size at all.
    pub fn chunk_len(&self, total: usize, cost: PointCost) -> usize {
        let workers = self.threads();
        if total == 0 {
            return 1;
        }
        if workers <= 1 {
            return total.min(MAX_CHUNK_POINTS);
        }
        // A few chunks per worker keeps the tail short without shrinking
        // jobs below the dispatch-amortizing quantum.
        let target = total.div_ceil(workers * CHUNKS_PER_WORKER);
        let min_points = (MIN_JOB_NANOS / cost.nanos()).max(1) as usize;
        target.clamp(min_points.min(total), MAX_CHUNK_POINTS).max(1)
    }

    /// Run jobs `0..n` and collect their results in job order.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let started = Instant::now();
        let counters = &self.counters;
        // Capture the caller's span path once so `engine.job` spans recorded
        // on pool worker threads nest under the phase that spawned the batch
        // (sweep, uncertainty, ...) instead of floating at top level.
        let collect = telemetry::enabled();
        // The job kind is the phase that spawned the batch (sweep,
        // uncertainty, ...) — the innermost span open *before* the batch span
        // itself is pushed.
        let kind = telemetry::global()
            .current_path_prefix()
            .trim_end_matches('/')
            .rsplit('/')
            .next()
            .filter(|s| !s.is_empty())
            .unwrap_or("adhoc")
            .to_string();
        let batch_span = if collect {
            Some(telemetry::span_args(
                "engine.batch",
                vec![("jobs", ArgValue::U64(n as u64))],
            ))
        } else {
            None
        };
        let parent = telemetry::global().current_path_prefix();
        let timed = |i: usize| {
            let job_started = Instant::now();
            // Re-root only on detached pool threads: when a job runs inline
            // on the spawning thread (jobs = 1), its span already nests
            // under the batch span via that thread's local stack, and
            // installing the prefix would double the path.
            let _prefix = if collect && telemetry::global().current_path_prefix().is_empty() {
                Some(telemetry::global().scoped_prefix(&parent))
            } else {
                None
            };
            let _span = if collect {
                Some(telemetry::span_args(
                    "engine.job",
                    vec![
                        ("job", ArgValue::U64(i as u64)),
                        ("kind", ArgValue::Str(kind.clone())),
                    ],
                ))
            } else {
                None
            };
            let out = f(i);
            counters.record_job(job_started.elapsed());
            out
        };
        let results = self.pool.run_indexed(n, timed);
        if collect {
            telemetry::add(Metric::EngineJobs, n as u64);
            telemetry::add(Metric::EngineBatches, 1);
        }
        drop(batch_span);
        self.counters.record_batch(started.elapsed());
        results
    }

    /// Run jobs `0..n`, each with its own deterministic RNG stream derived
    /// from the engine's root seed and the job index.
    pub fn run_seeded<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, ChaCha8Rng) -> T + Sync,
    {
        let root = self.config.root_seed;
        self.run(n, |i| f(i, job_rng(root, i as u64)))
    }

    /// Run fallible jobs `0..n`; all jobs execute, then the lowest-indexed
    /// error (if any) is returned. Taking the first error *by job index* —
    /// not by completion time — keeps error reporting as deterministic as
    /// results.
    pub fn try_run<T, E, F>(&self, n: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        self.run(n, f).into_iter().collect()
    }

    /// Work executed by this engine so far.
    pub fn stats(&self) -> EngineStats {
        self.counters.snapshot()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("threads", &self.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn run_preserves_job_order_at_any_thread_count() {
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        for jobs in [1, 2, 8] {
            let engine = Engine::new(EngineConfig::default().with_jobs(jobs));
            assert_eq!(engine.run(100, |i| i * i), expected, "jobs={jobs}");
        }
    }

    #[test]
    fn seeded_jobs_are_thread_count_invariant() {
        let reference: Vec<u64> =
            Engine::sequential().run_seeded(64, |_, mut rng| rng.gen::<u64>());
        for jobs in [2, 8] {
            let engine = Engine::new(EngineConfig::default().with_jobs(jobs));
            let draws: Vec<u64> = engine.run_seeded(64, |_, mut rng| rng.gen::<u64>());
            assert_eq!(draws, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn root_seed_changes_every_stream() {
        let a: Vec<u64> = Engine::new(EngineConfig::default().with_root_seed(1))
            .run_seeded(16, |_, mut rng| rng.gen());
        let b: Vec<u64> = Engine::new(EngineConfig::default().with_root_seed(2))
            .run_seeded(16, |_, mut rng| rng.gen());
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn try_run_returns_lowest_indexed_error() {
        let engine = Engine::new(EngineConfig::default().with_jobs(8));
        let r: Result<Vec<usize>, usize> =
            engine.try_run(100, |i| if i % 30 == 29 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err(29));
        let ok: Result<Vec<usize>, usize> = engine.try_run(10, Ok);
        assert_eq!(ok, Ok((0..10).collect()));
    }

    #[test]
    fn counters_track_jobs_and_batches() {
        let engine = Engine::sequential();
        engine.run(5, |i| i);
        engine.run(3, |i| i);
        let stats = engine.stats();
        assert_eq!(stats.jobs_run, 8);
        assert_eq!(stats.batches, 2);
        assert!(stats.cpu <= stats.wall + std::time::Duration::from_millis(50));
    }

    #[test]
    fn zero_jobs_means_hardware_parallelism() {
        let engine = Engine::default();
        assert!(engine.threads() >= 1);
        assert_eq!(engine.run(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_stays_warm_across_batches() {
        // Many consecutive batches on one engine must all succeed on the
        // same resident pool (spawned once, reused, joined on drop).
        let engine = Engine::new(EngineConfig::default().with_jobs(4));
        for round in 0..20 {
            let out = engine.run(33, move |i| i * round);
            assert_eq!(out, (0..33).map(|i| i * round).collect::<Vec<_>>());
        }
        assert_eq!(engine.stats().batches, 20);
    }

    #[test]
    fn chunk_len_adapts_to_thread_count_and_cost() {
        let seq = Engine::sequential();
        // Sequential engines take one chunk (up to the scratch cap): there
        // is nobody to balance against.
        assert_eq!(seq.chunk_len(10_000, PointCost::McSample), 10_000);
        assert_eq!(
            seq.chunk_len(100_000, PointCost::McSample),
            MAX_CHUNK_POINTS
        );

        let par = Engine::new(EngineConfig::default().with_jobs(8));
        let mc = par.chunk_len(10_000, PointCost::McSample);
        // At least the dispatch-amortizing quantum, at most the cap.
        assert!(mc >= (MIN_JOB_NANOS / 50) as usize, "chunk {mc} too small");
        assert!(mc <= MAX_CHUNK_POINTS);
        // Costlier points justify smaller chunks.
        assert!(par.chunk_len(10_000, PointCost::FullReport) <= mc);
        // Degenerate totals stay well-formed.
        assert_eq!(par.chunk_len(0, PointCost::McSample), 1);
        assert_eq!(par.chunk_len(3, PointCost::McSample), 3);
    }

    /// The exact clamp arithmetic of [`Engine::chunk_len`], pinned per cost
    /// class: `target = ceil(total / (threads × 4))` clamped between the
    /// ≥25 µs dispatch quantum (`MIN_JOB_NANOS / cost`) and the scratch cap.
    #[test]
    fn chunk_len_floors_chunks_at_the_dispatch_quantum() {
        let par = Engine::new(EngineConfig::default().with_jobs(8));

        // Cost-class floors: 25 µs buys 500 MC samples (50 ns each) but
        // only 83 full reports (300 ns each).
        assert_eq!((MIN_JOB_NANOS / PointCost::McSample.nanos()) as usize, 500);
        assert_eq!((MIN_JOB_NANOS / PointCost::FullReport.nanos()) as usize, 83);

        // 10 000 points on 8 threads: the raw target ceil(10000/32) = 313
        // is below the MC floor (500) but above the full-report floor (83).
        assert_eq!(par.chunk_len(10_000, PointCost::McSample), 500);
        assert_eq!(par.chunk_len(10_000, PointCost::FullReport), 313);

        // Enough points that the raw target clears the floor untouched...
        assert_eq!(par.chunk_len(100_000, PointCost::McSample), 3125);
        // ...and so many that the scratch cap takes over.
        assert_eq!(
            par.chunk_len(1_000_000, PointCost::McSample),
            MAX_CHUNK_POINTS
        );
        assert_eq!(
            par.chunk_len(1_000_000, PointCost::FullReport),
            MAX_CHUNK_POINTS
        );

        // A batch smaller than the floor is one chunk, not zero: the floor
        // relaxes to `total` so tiny batches stay a single dispatch.
        assert_eq!(par.chunk_len(400, PointCost::McSample), 400);
        assert_eq!(par.chunk_len(82, PointCost::FullReport), 82);
        // Just past the floor it splits: 84 points go as 83 + 1.
        assert_eq!(par.chunk_len(84, PointCost::FullReport), 83);

        // One-point batches are one one-point chunk at every cost class
        // and thread count.
        for engine in [
            Engine::sequential(),
            Engine::new(EngineConfig::default().with_jobs(2)),
            Engine::new(EngineConfig::default().with_jobs(8)),
        ] {
            for cost in [PointCost::McSample, PointCost::FullReport] {
                assert_eq!(engine.chunk_len(1, cost), 1);
            }
        }

        // Fewer threads → proportionally larger chunks (2 threads × 4
        // chunks each): ceil(10000/8) = 1250 clears both floors.
        let two = Engine::new(EngineConfig::default().with_jobs(2));
        assert_eq!(two.chunk_len(10_000, PointCost::McSample), 1250);
        assert_eq!(two.chunk_len(10_000, PointCost::FullReport), 1250);
    }
}
