//! Engine configuration.

/// Configuration for an analysis [`super::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for the job pool. `0` means "one per hardware thread".
    pub jobs: usize,
    /// Root seed for per-job RNG streams ([`super::job_rng`]). Defaults to
    /// 2007, the paper's publication year and the seed the seed-repo analyses
    /// were calibrated against.
    pub root_seed: u64,
    /// Whether analyses run through this engine should consult the simulator
    /// memoization cache. Advisory: analyses that never simulate ignore it.
    pub use_cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 0,
            root_seed: 2007,
            use_cache: true,
        }
    }
}

impl EngineConfig {
    /// Set the worker-thread count (`0` = hardware parallelism).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Set the root seed for per-job RNG streams.
    pub fn with_root_seed(mut self, seed: u64) -> Self {
        self.root_seed = seed;
        self
    }

    /// Enable or disable simulator memoization for this engine's jobs.
    pub fn with_cache(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_auto_threads_cached_paper_seed() {
        let c = EngineConfig::default();
        assert_eq!(c.jobs, 0);
        assert_eq!(c.root_seed, 2007);
        assert!(c.use_cache);
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::default()
            .with_jobs(4)
            .with_root_seed(99)
            .with_cache(false);
        assert_eq!(
            c,
            EngineConfig {
                jobs: 4,
                root_seed: 99,
                use_cache: false
            }
        );
    }
}
