//! A resident worker pool with barrier-free, index-addressed collection.
//!
//! The engine used to re-enter a Rayon-style scope for every batch: each
//! analysis phase spawned fresh OS threads, pushed results through a shared
//! queue, and paid an ordered-collection barrier (a final sort by job index)
//! before returning. With the batch kernels down to microseconds per chunk,
//! that per-phase setup dominated wall time and job counts beyond one bought
//! nothing.
//!
//! [`WorkerPool`] fixes both costs structurally:
//!
//! - **Warm threads.** Workers are spawned once, on the first parallel batch,
//!   and stay parked on a condvar between batches for the life of the engine.
//!   `rat serve` workers and `rat watch` re-renders hold one engine for the
//!   process lifetime, so every phase after the first reuses hot threads.
//! - **Barrier-free collection.** The caller pre-sizes one output buffer and
//!   every job writes its result at its own index (`slot[i] = f(i)`). Order
//!   is a property of the buffer layout, not of completion time, so no
//!   reordering pass or ordered channel exists at all — the determinism
//!   guarantee costs nothing.
//! - **Caller participation.** The submitting thread claims indices alongside
//!   the workers instead of blocking, so a pool of `t` threads applies `t`
//!   streams of work to the batch, not `t - 1` plus a sleeping coordinator.
//!
//! Indices are claimed from a single atomic counter, which makes the schedule
//! nondeterministic — but jobs are independent and land at fixed indices, so
//! outputs are bit-identical at every thread count regardless of who ran
//! what. Panics in a job are caught, the batch is cancelled cooperatively,
//! and the first payload (by arrival) is re-thrown on the submitting thread
//! after every worker has left the batch.

use std::cell::Cell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// True while this thread is executing a pool job. A nested `run_indexed`
    /// from inside a job must run inline: the outer batch holds the submit
    /// lock, so queueing would deadlock, and the nested work is already on a
    /// worker thread anyway.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// A type-erased pointer to the current batch's claim loop. The referent
/// lives on the submitting thread's stack; the publish/retire protocol in
/// [`WorkerPool::run_indexed`] guarantees no worker touches it after the
/// submitter returns.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (required at construction) and the pool's
// entered-count protocol bounds every dereference within the referent's
// lifetime on the submitting thread's stack.
unsafe impl Send for TaskPtr {}

struct PoolState {
    /// Bumped once per published batch; workers use it to tell a fresh batch
    /// from a spurious wakeup or a batch they already finished.
    epoch: u64,
    /// The claim loop of the batch currently accepting workers, if any.
    task: Option<TaskPtr>,
    /// Workers currently inside the batch (between picking up `task` and
    /// returning from it). The submitter waits for this to reach zero before
    /// releasing the batch's stack frame.
    entered: usize,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Signalled when a batch is published or shutdown begins.
    work_ready: Condvar,
    /// Signalled when the last worker leaves a batch.
    batch_done: Condvar,
}

fn lock(inner: &PoolInner) -> std::sync::MutexGuard<'_, PoolState> {
    // A worker can only poison this mutex by panicking between lock and
    // unlock, and no user code runs there; recover the guard rather than
    // aborting the whole analysis on a theoretical poison.
    inner
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A fixed-size pool of resident worker threads executing indexed job
/// batches. See the module docs for the design.
pub(super) struct WorkerPool {
    /// Total parallelism, including the submitting thread.
    threads: usize,
    inner: Arc<PoolInner>,
    /// Serializes whole batches: two threads sharing one engine queue behind
    /// each other instead of corrupting the published-batch slot. Nested
    /// submissions from inside a job never reach this lock (they run
    /// inline), so it cannot self-deadlock.
    submit: Mutex<()>,
    /// Spawned lazily on the first batch that can use them.
    handles: OnceLock<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// A pool applying `threads` total threads to each batch (the submitting
    /// thread plus `threads - 1` resident workers). `threads <= 1` never
    /// spawns and runs every batch inline.
    pub(super) fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    task: None,
                    entered: 0,
                    shutdown: false,
                }),
                work_ready: Condvar::new(),
                batch_done: Condvar::new(),
            }),
            submit: Mutex::new(()),
            handles: OnceLock::new(),
        }
    }

    /// Total threads a batch runs on (submitter included).
    pub(super) fn threads(&self) -> usize {
        self.threads
    }

    fn ensure_spawned(&self) {
        self.handles.get_or_init(|| {
            (0..self.threads - 1)
                .map(|w| {
                    let inner = Arc::clone(&self.inner);
                    std::thread::Builder::new()
                        .name(format!("rat-engine-{w}"))
                        .spawn(move || worker_loop(&inner))
                        .expect("engine worker thread spawn cannot fail")
                })
                .collect()
        });
    }

    /// Run jobs `0..n`, writing each result at its own index in a pre-sized
    /// buffer, and return the buffer. Results are in job order by
    /// construction; no ordering barrier exists.
    pub(super) fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let nested = IN_POOL_JOB.with(Cell::get);
        if self.threads <= 1 || n <= 1 || nested {
            // The reference schedule: strictly sequential, in index order.
            return (0..n).map(f).collect();
        }
        self.ensure_spawned();
        let _submission = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);

        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit needs no initialization; elements are written
        // exactly once each (disjoint indices from the claim counter) before
        // the buffer is read.
        unsafe { out.set_len(n) };
        let slots = SlotPtr(out.as_mut_ptr());

        let next = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        let claim = || {
            IN_POOL_JOB.with(|flag| flag.set(true));
            let slots = &slots;
            while !cancelled.load(Ordering::Acquire) {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
                    // SAFETY: `i` was claimed by exactly this thread and is
                    // in bounds; the buffer outlives the batch (submitter
                    // waits for all workers to leave before touching it).
                    Ok(v) => unsafe { (*slots.0.add(i)).write(v) },
                    Err(payload) => {
                        let mut slot = panic_payload
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        slot.get_or_insert(payload);
                        drop(slot);
                        cancelled.store(true, Ordering::Release);
                        break;
                    }
                };
            }
            IN_POOL_JOB.with(|flag| flag.set(false));
        };

        // Publish the batch. The raw pointer erases `claim`'s stack lifetime;
        // the retire step below re-establishes it by refusing to return while
        // any worker is still inside the batch.
        let task_ref: &(dyn Fn() + Sync) = &claim;
        // SAFETY: the transmute only erases the stack lifetime from the fat
        // pointer's type; the retire step re-establishes it dynamically.
        let task_ptr: *const (dyn Fn() + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(task_ref)
        };
        {
            let mut st = lock(&self.inner);
            debug_assert!(st.task.is_none(), "engine batches are serialized");
            st.epoch += 1;
            st.task = Some(TaskPtr(task_ptr));
            self.inner.work_ready.notify_all();
        }

        // The submitting thread is a full participant.
        claim();

        // Retire the batch: unpublish so no further worker can enter, then
        // wait until every worker that did enter has left. Only after that is
        // it safe to release `claim`, `out`, `next`, ... on this stack frame.
        {
            let mut st = lock(&self.inner);
            st.task = None;
            while st.entered > 0 {
                st = self
                    .inner
                    .batch_done
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        let payload = panic_payload
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(payload) = payload {
            // Completed slots are intentionally leaked: MaybeUninit never
            // drops, and we cannot know which indices were written after a
            // cancellation. Matches scoped-thread panic semantics closely
            // enough for an abortive path.
            drop(out);
            panic::resume_unwind(payload);
        }

        // Every index in 0..n was claimed (the loop only exits with
        // `next >= n` when not cancelled) and every claimant finished, so the
        // buffer is fully initialized: reinterpret in place.
        let mut out = ManuallyDrop::new(out);
        let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
        // SAFETY: all `len` elements are initialized, and `MaybeUninit<T>`
        // has the same layout as `T`.
        unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, cap) }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.inner);
            st.shutdown = true;
            self.inner.work_ready.notify_all();
        }
        if let Some(handles) = self.handles.take() {
            for handle in handles {
                // A worker that panicked outside a job (impossible today —
                // jobs are the only user code) still must not break drop.
                let _ = handle.join();
            }
        }
    }
}

/// Shares the output buffer's base pointer with the claim loop.
struct SlotPtr<T>(*mut MaybeUninit<T>);

// SAFETY: workers write disjoint indices of a buffer that outlives the
// batch; `T: Send` results may be produced on any thread.
unsafe impl<T: Send> Send for SlotPtr<T> {}
unsafe impl<T: Send> Sync for SlotPtr<T> {}

fn worker_loop(inner: &PoolInner) {
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut st = lock(inner);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some(TaskPtr(ptr)) = st.task {
                        st.entered += 1;
                        break ptr;
                    }
                    // Missed the whole batch (it retired before this worker
                    // woke); note the epoch and keep waiting.
                }
                st = inner
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // SAFETY: `entered` was incremented under the lock while the batch
        // was published, so the submitter cannot release the referent until
        // this worker decrements it below.
        let claim = unsafe { &*task };
        claim();
        let mut st = lock(inner);
        st.entered -= 1;
        if st.entered == 0 {
            inner.batch_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_land_at_their_own_index() {
        let pool = WorkerPool::new(4);
        for n in [0, 1, 2, 3, 64, 1000] {
            assert_eq!(
                pool.run_indexed(n, |i| i * 3),
                (0..n).map(|i| i * 3).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn pool_is_reused_across_batches() {
        let pool = WorkerPool::new(3);
        for _ in 0..50 {
            assert_eq!(pool.run_indexed(17, |i| i), (0..17).collect::<Vec<_>>());
        }
        assert_eq!(pool.handles.get().map(Vec::len), Some(2));
    }

    #[test]
    fn single_thread_runs_inline_without_spawning() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.run_indexed(8, |i| i + 1), (1..9).collect::<Vec<_>>());
        assert!(pool.handles.get().is_none());
    }

    #[test]
    fn nested_batches_run_inline_instead_of_deadlocking() {
        let pool = Arc::new(WorkerPool::new(4));
        let inner_pool = Arc::clone(&pool);
        let sums = pool.run_indexed(8, move |i| {
            inner_pool
                .run_indexed(4, |j| i * 10 + j)
                .into_iter()
                .sum::<usize>()
        });
        let expected: Vec<usize> = (0..8).map(|i| 4 * (i * 10) + 6).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn panicking_job_propagates_to_the_submitter() {
        let pool = WorkerPool::new(4);
        let attempted = AtomicU64::new(0);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(100, |i| {
                attempted.fetch_add(1, Ordering::Relaxed);
                assert_ne!(i, 37, "job 37 exploded");
                i
            })
        }));
        assert!(caught.is_err());
        // The pool survives a panicked batch and keeps serving.
        assert_eq!(pool.run_indexed(5, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(8);
        pool.run_indexed(64, |i| i);
        drop(pool); // must not hang or leak threads
    }
}
