//! Engine work accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Thread-safe tallies of the work an engine has executed. Interior-mutable
/// so jobs running on pool threads can record without locking.
#[derive(Debug, Default)]
pub struct EngineCounters {
    jobs: AtomicU64,
    batches: AtomicU64,
    wall_ns: AtomicU64,
    cpu_ns: AtomicU64,
}

impl EngineCounters {
    /// Record one executed job taking `cpu` of worker time.
    pub fn record_job(&self, cpu: Duration) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
        self.cpu_ns
            .fetch_add(cpu.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record one completed batch (an `Engine::run` call) spanning `wall`.
    pub fn record_batch(&self, wall: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.wall_ns
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A snapshot of the tallies.
    pub fn snapshot(&self) -> EngineStats {
        EngineStats {
            jobs_run: self.jobs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            wall: Duration::from_nanos(self.wall_ns.load(Ordering::Relaxed)),
            cpu: Duration::from_nanos(self.cpu_ns.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs executed (cache hits still count — the job ran, its simulation
    /// didn't).
    pub jobs_run: u64,
    /// `Engine::run` batches completed.
    pub batches: u64,
    /// Wall-clock time spent inside batches.
    pub wall: Duration,
    /// Summed per-job worker time (exceeds `wall` when jobs overlap).
    pub cpu: Duration,
}

impl EngineStats {
    /// One-line human-readable form, e.g. for a CLI footer.
    pub fn render(&self) -> String {
        format!(
            "engine: {} jobs in {} batches, wall {:.3}s, cpu {:.3}s",
            self.jobs_run,
            self.batches,
            self.wall.as_secs_f64(),
            self.cpu.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = EngineCounters::default();
        c.record_job(Duration::from_millis(5));
        c.record_job(Duration::from_millis(7));
        c.record_batch(Duration::from_millis(8));
        let s = c.snapshot();
        assert_eq!(s.jobs_run, 2);
        assert_eq!(s.batches, 1);
        assert_eq!(s.cpu, Duration::from_millis(12));
        assert_eq!(s.wall, Duration::from_millis(8));
    }

    #[test]
    fn render_mentions_jobs_and_batches() {
        let c = EngineCounters::default();
        c.record_job(Duration::ZERO);
        c.record_batch(Duration::ZERO);
        let line = c.snapshot().render();
        assert!(line.contains("1 jobs"));
        assert!(line.contains("1 batches"));
    }
}
