//! Break-even analysis: is the migration worth the engineering?
//!
//! §1 of the paper frames the decision in exactly these terms: some managers
//! demand 50–100x before approving an FPGA effort, while "other scenarios
//! might place the break-even point (time of development versus time saved at
//! execution) at a more conservative factor of ten or less". This module
//! computes that break-even: given the predicted speedup, the software
//! baseline, and an estimate of the development investment, how many runs —
//! and how much calendar time at a given duty cycle — until the migration
//! pays for itself?

use crate::engine::{Engine, PointCost};
use crate::error::RatError;
use crate::params::{Buffering, RatInput};
use crate::quantity::Seconds;
use crate::solve::batch::{solve_batch, BatchPoints};
use crate::solve::stages;
use crate::sweep::SweepParam;
use crate::table::{sci, TextTable};
use serde::{Deserialize, Serialize};

/// The development investment and usage profile of a migration project.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Engineering investment, in hours.
    pub development_hours: f64,
    /// How many application runs execute per day once deployed.
    pub runs_per_day: f64,
}

/// The break-even verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakEven {
    /// Wall-clock time saved by one accelerated run.
    pub saved_per_run: Seconds,
    /// Runs needed for cumulative savings to cover the development time.
    /// `f64::INFINITY` if the design is a slowdown.
    pub runs_to_break_even: f64,
    /// Calendar days to break even at the given duty cycle.
    pub days_to_break_even: f64,
}

impl MigrationCost {
    /// Reject non-finite or non-positive cost parameters.
    pub fn validate(&self) -> Result<(), RatError> {
        if !(self.development_hours.is_finite() && self.development_hours > 0.0) {
            return Err(RatError::param("development_hours must be positive"));
        }
        if !(self.runs_per_day.is_finite() && self.runs_per_day > 0.0) {
            return Err(RatError::param("runs_per_day must be positive"));
        }
        Ok(())
    }
}

impl BreakEven {
    /// Compute the break-even point for a design under a cost model. The RC
    /// execution time comes through the memoized stage graph
    /// ([`crate::solve::stages`]), bit-identical to `throughput::t_rc`.
    pub fn analyze(input: &RatInput, cost: &MigrationCost) -> Result<Self, RatError> {
        input.validate()?;
        cost.validate()?;
        let comm = stages::comm_stage(input);
        let comp = stages::comp_stage(input);
        let overlap = stages::overlap_stage(input, comm.t_comm, comp);
        let t_rc = match input.buffering {
            Buffering::Single => overlap.t_rc_single,
            Buffering::Double => overlap.t_rc_double,
        };
        Ok(Self::from_times(input.software.t_soft, t_rc, cost))
    }

    /// The break-even arithmetic given an already-predicted RC execution time.
    /// `cost` must already be validated.
    fn from_times(t_soft: Seconds, t_rc: Seconds, cost: &MigrationCost) -> Self {
        let saved_per_run = t_soft - t_rc;
        let dev_secs = Seconds::new(cost.development_hours * 3600.0);
        let (runs, days) = if saved_per_run <= Seconds::ZERO {
            (f64::INFINITY, f64::INFINITY)
        } else {
            let runs = dev_secs / saved_per_run;
            (runs, runs / cost.runs_per_day)
        };
        Self {
            saved_per_run,
            runs_to_break_even: runs,
            days_to_break_even: days,
        }
    }

    /// Whether the migration pays for itself within `horizon_days`.
    pub fn worth_it_within(&self, horizon_days: f64) -> bool {
        self.days_to_break_even <= horizon_days
    }

    /// Render the verdict.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title("Break-even analysis (development time vs execution time saved)")
            .header(["Metric", "Value"]);
        t.row([
            "time saved per run".to_string(),
            format!("{:.3e} s", self.saved_per_run.seconds()),
        ]);
        t.row([
            "runs to break even".to_string(),
            format!("{:.0}", self.runs_to_break_even),
        ]);
        t.row([
            "days to break even".to_string(),
            format!("{:.1}", self.days_to_break_even),
        ]);
        t.render()
    }
}

/// One point of a break-even sweep: the parameter value and its verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakEvenSweepPoint {
    /// The swept parameter's value at this point.
    pub value: f64,
    /// The break-even verdict at this point.
    pub verdict: BreakEven,
}

/// A break-even sweep across one design parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakEvenSweep {
    /// The parameter varied.
    pub param: SweepParam,
    /// One verdict per swept value, in input order.
    pub points: Vec<BreakEvenSweepPoint>,
}

impl BreakEvenSweep {
    /// The smallest swept value whose migration pays off within
    /// `horizon_days`, if any (assumes the sweep is ordered by preference).
    pub fn first_worth_it(&self, horizon_days: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.verdict.worth_it_within(horizon_days))
            .map(|p| p.value)
    }

    /// Render as a table, one row per swept value.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title(format!("Break-even sweep over {}", self.param.label()))
            .header([self.param.label(), "Saved/run", "Runs", "Days"]);
        for p in &self.points {
            t.row([
                sci(p.value),
                format!("{:.3e} s", p.verdict.saved_per_run.seconds()),
                format!("{:.0}", p.verdict.runs_to_break_even),
                format!("{:.1}", p.verdict.days_to_break_even),
            ]);
        }
        t.render()
    }
}

/// Break-even verdicts across a sweep of `param`, sequentially.
pub fn analyze_sweep(
    input: &RatInput,
    param: SweepParam,
    values: &[f64],
    cost: &MigrationCost,
) -> Result<BreakEvenSweep, RatError> {
    analyze_sweep_with(&Engine::sequential(), input, param, values, cost)
}

/// [`analyze_sweep`], with the swept values evaluated in adaptively-sized
/// batches as independent jobs on `engine` (see [`Engine::chunk_len`]).
/// Each chunk is one
/// [`solve_batch`] call, so the per-point arithmetic is the batched kernel's
/// — bit-identical to [`BreakEven::analyze`] on the materialized input.
pub fn analyze_sweep_with(
    engine: &Engine,
    input: &RatInput,
    param: SweepParam,
    values: &[f64],
    cost: &MigrationCost,
) -> Result<BreakEvenSweep, RatError> {
    let _span = crate::telemetry::span("breakeven-sweep");
    cost.validate()?;
    let chunk = engine.chunk_len(values.len(), PointCost::FullReport);
    let chunks = values.len().div_ceil(chunk);
    let per_chunk = engine.try_run(chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(values.len());
        let slice = &values[lo..hi];
        let mut batch = BatchPoints::new(input, slice.len());
        batch.push_column(param, slice);
        solve_batch(&batch)
    })?;
    let points = per_chunk
        .into_iter()
        .flatten()
        .zip(values)
        .map(|(report, &value)| BreakEvenSweepPoint {
            value,
            verdict: BreakEven::from_times(
                report.input.software.t_soft,
                report.throughput.t_rc,
                cost,
            ),
        })
        .collect();
    Ok(BreakEvenSweep { param, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;

    fn cost() -> MigrationCost {
        // Three engineer-months at ~21 workdays of 8 hours, heavy usage.
        MigrationCost {
            development_hours: 500.0,
            runs_per_day: 10_000.0,
        }
    }

    #[test]
    fn pdf1d_break_even_numbers() {
        // Saved per run: 0.578 - 0.0546 = 0.523 s; 500 h = 1.8e6 s;
        // ~3.44 million runs, ~344 days at 10k runs/day.
        let be = BreakEven::analyze(&pdf1d_example(), &cost()).unwrap();
        assert!((be.saved_per_run.seconds() - 0.523).abs() < 0.01);
        assert!((be.runs_to_break_even - 3.44e6).abs() / 3.44e6 < 0.02);
        assert!((be.days_to_break_even - 344.0).abs() < 10.0);
        assert!(!be.worth_it_within(100.0));
        assert!(be.worth_it_within(400.0));
    }

    #[test]
    fn slowdown_never_breaks_even() {
        let mut input = pdf1d_example();
        input.comp.throughput_proc = 0.1; // cripple the design: speedup < 1
        let be = BreakEven::analyze(&input, &cost()).unwrap();
        assert!(be.saved_per_run < Seconds::ZERO);
        assert_eq!(be.runs_to_break_even, f64::INFINITY);
        assert!(!be.worth_it_within(1e9));
    }

    #[test]
    fn higher_duty_cycle_breaks_even_sooner() {
        let lazy = BreakEven::analyze(
            &pdf1d_example(),
            &MigrationCost {
                development_hours: 500.0,
                runs_per_day: 100.0,
            },
        )
        .unwrap();
        let busy = BreakEven::analyze(&pdf1d_example(), &cost()).unwrap();
        assert!(busy.days_to_break_even < lazy.days_to_break_even);
        // Runs to break even are duty-cycle independent.
        assert!((busy.runs_to_break_even - lazy.runs_to_break_even).abs() < 1e-6);
    }

    #[test]
    fn invalid_costs_rejected() {
        let bad = MigrationCost {
            development_hours: 0.0,
            runs_per_day: 1.0,
        };
        assert!(BreakEven::analyze(&pdf1d_example(), &bad).is_err());
        let bad = MigrationCost {
            development_hours: 10.0,
            runs_per_day: -1.0,
        };
        assert!(BreakEven::analyze(&pdf1d_example(), &bad).is_err());
    }

    #[test]
    fn sweep_matches_per_point_analyze_bitwise() {
        use crate::sweep::SweepParam;
        let input = pdf1d_example();
        let values: Vec<f64> = (1..=8).map(|i| f64::from(i) * 25.0e6).collect();
        let sweep = analyze_sweep(&input, SweepParam::Fclock, &values, &cost()).unwrap();
        assert_eq!(sweep.points.len(), values.len());
        for (p, &v) in sweep.points.iter().zip(&values) {
            let scalar = BreakEven::analyze(&SweepParam::Fclock.apply(&input, v), &cost()).unwrap();
            assert_eq!(p.value, v);
            assert_eq!(p.verdict, scalar, "at fclock {v}");
        }
    }

    #[test]
    fn sweep_surfaces_the_first_invalid_value() {
        use crate::sweep::SweepParam;
        let input = pdf1d_example();
        let err =
            analyze_sweep(&input, SweepParam::AlphaWrite, &[0.5, 2.0, 3.0], &cost()).unwrap_err();
        let scalar = SweepParam::AlphaWrite
            .apply(&input, 2.0)
            .validate()
            .unwrap_err();
        assert_eq!(err.to_string(), scalar.to_string());
    }

    #[test]
    fn sweep_finds_the_break_even_frontier() {
        use crate::sweep::SweepParam;
        let input = pdf1d_example();
        let values: Vec<f64> = (1..=12).map(|i| f64::from(i) * 25.0e6).collect();
        let sweep = analyze_sweep(&input, SweepParam::Fclock, &values, &cost()).unwrap();
        // Fast clocks break even sooner, so a generous horizon admits a
        // slower (cheaper) clock than a tight one.
        let tight = sweep.first_worth_it(360.0).unwrap();
        let loose = sweep.first_worth_it(400.0).unwrap();
        assert!(loose <= tight, "loose {loose} vs tight {tight}");
        assert!(sweep.first_worth_it(0.001).is_none());
        assert!(sweep.render().lines().count() == 3 + values.len());
    }

    #[test]
    fn render_contains_the_three_numbers() {
        let s = BreakEven::analyze(&pdf1d_example(), &cost())
            .unwrap()
            .render();
        assert!(s.contains("time saved per run"));
        assert!(s.contains("runs to break even"));
        assert!(s.contains("days to break even"));
    }
}
