//! Utilization metrics: Equations (8) through (11).
//!
//! Utilization splits execution time between computation and communication.
//! High computation utilization means the FPGA is rarely idle (speedup is
//! maximized); low utilization flags headroom recoverable by restructuring or
//! overlapping communication. Communication utilization reads differently: the
//! channel is a single serialized resource, so its utilization is the fraction
//! of bandwidth *already spent*, bounding any additional transfers.
//!
//! Inputs are typed [`Seconds`]; the returned utilizations are dimensionless
//! fractions in `[0, 1]`.

use crate::quantity::Seconds;

/// Equation (8): single-buffered computation utilization,
/// `t_comp / (t_comm + t_comp)`.
pub fn util_comp_single(t_comm: Seconds, t_comp: Seconds) -> f64 {
    t_comp / (t_comm + t_comp)
}

/// Equation (9): single-buffered communication utilization,
/// `t_comm / (t_comm + t_comp)`.
pub fn util_comm_single(t_comm: Seconds, t_comp: Seconds) -> f64 {
    t_comm / (t_comm + t_comp)
}

/// Equation (10): double-buffered computation utilization,
/// `t_comp / max(t_comm, t_comp)`. Only meaningful once enough iterations have
/// run for steady-state overlap.
pub fn util_comp_double(t_comm: Seconds, t_comp: Seconds) -> f64 {
    t_comp / t_comm.max(t_comp)
}

/// Equation (11): double-buffered communication utilization,
/// `t_comm / max(t_comm, t_comp)`.
pub fn util_comm_double(t_comm: Seconds, t_comp: Seconds) -> f64 {
    t_comm / t_comm.max(t_comp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    #[test]
    fn single_buffered_utilizations_partition_unity() {
        let (comm, comp) = (s(2.0), s(6.0));
        assert!((util_comp_single(comm, comp) - 0.75).abs() < 1e-12);
        assert!((util_comm_single(comm, comp) - 0.25).abs() < 1e-12);
        assert!((util_comp_single(comm, comp) + util_comm_single(comm, comp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn double_buffered_dominant_term_is_fully_utilized() {
        // Compute-bound: compute utilization is 1, comm is the ratio.
        assert_eq!(util_comp_double(s(2.0), s(6.0)), 1.0);
        assert!((util_comm_double(s(2.0), s(6.0)) - 1.0 / 3.0).abs() < 1e-12);
        // Comm-bound: mirrored.
        assert_eq!(util_comm_double(s(6.0), s(2.0)), 1.0);
        assert!((util_comp_double(s(6.0), s(2.0)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_double_buffering_saturates_both() {
        assert_eq!(util_comp_double(s(5.0), s(5.0)), 1.0);
        assert_eq!(util_comm_double(s(5.0), s(5.0)), 1.0);
    }

    #[test]
    fn md_table9_utilizations() {
        // Table 9 at 150 MHz: t_comm = 2.62e-3, t_comp = 3.58e-1 gives
        // util_comm 0.7%, util_comp 99.3% (single buffered).
        let (comm, comp) = (s(2.62e-3), s(3.58e-1));
        assert!((util_comm_single(comm, comp) - 0.007).abs() < 0.001);
        assert!((util_comp_single(comm, comp) - 0.993).abs() < 0.001);
    }

    #[test]
    fn double_never_below_single_for_each_metric() {
        for (comm, comp) in [(1.0, 9.0), (9.0, 1.0), (4.0, 4.0), (1e-6, 1.0)] {
            let (comm, comp) = (s(comm), s(comp));
            assert!(util_comp_double(comm, comp) >= util_comp_single(comm, comp) - 1e-15);
            assert!(util_comm_double(comm, comp) >= util_comm_single(comm, comp) - 1e-15);
        }
    }
}
