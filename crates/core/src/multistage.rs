//! Multi-kernel application analysis.
//!
//! §6 of the paper: "The current methodology was designed to support
//! applications involving several algorithms, each with their own separate RAT
//! analysis." A real application is often a pipeline of kernels, only some of
//! which migrate to the FPGA; the composite speedup follows Amdahl-style
//! accounting: each FPGA stage contributes its predicted `t_RC`, each
//! stage left in software contributes its software time unchanged.

use crate::error::RatError;
use crate::params::RatInput;
use crate::quantity::Seconds;
use crate::table::{sci, TextTable};
use crate::throughput::{self, ThroughputPrediction};
use serde::{Deserialize, Serialize};

/// One stage of a multi-kernel application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stage {
    /// A kernel migrated to the FPGA, with its own RAT worksheet. The stage's
    /// software-baseline time is the worksheet's `t_soft`.
    Fpga(RatInput),
    /// A portion left in software: name and its execution time.
    Software {
        /// Stage name.
        name: String,
        /// Execution time.
        t_soft: Seconds,
    },
}

impl Stage {
    fn name(&self) -> &str {
        match self {
            Stage::Fpga(input) => &input.name,
            Stage::Software { name, .. } => name,
        }
    }

    fn t_soft(&self) -> Seconds {
        match self {
            Stage::Fpga(input) => input.software.t_soft,
            Stage::Software { t_soft, .. } => *t_soft,
        }
    }
}

/// Per-stage outcome within a composite analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageResult {
    /// Stage name.
    pub name: String,
    /// The stage's software-baseline time.
    pub t_soft: Seconds,
    /// The stage's accelerated time (equals `t_soft` for software stages).
    pub t_accel: Seconds,
    /// The stage's own speedup (1.0 for software stages).
    pub speedup: f64,
    /// Throughput prediction for FPGA stages.
    pub prediction: Option<ThroughputPrediction>,
}

/// The composite analysis of a staged application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiStageReport {
    /// Per-stage results, in pipeline order.
    pub stages: Vec<StageResult>,
    /// Total software-baseline time.
    pub total_soft: Seconds,
    /// Total accelerated time.
    pub total_accel: Seconds,
    /// Composite application speedup.
    pub speedup: f64,
}

impl MultiStageReport {
    /// Amdahl ceiling: the speedup if every FPGA stage became free, bounded by
    /// the software-resident fraction.
    pub fn amdahl_ceiling(&self) -> f64 {
        let resident: Seconds = self
            .stages
            .iter()
            .filter(|s| s.prediction.is_none())
            .map(|s| s.t_soft)
            .sum();
        if resident == Seconds::ZERO {
            f64::INFINITY
        } else {
            self.total_soft / resident
        }
    }

    /// The stage consuming the largest share of accelerated time — the next
    /// migration or optimization target.
    pub fn bottleneck(&self) -> Option<&StageResult> {
        self.stages
            .iter()
            .max_by(|a, b| a.t_accel.seconds().total_cmp(&b.t_accel.seconds()))
    }

    /// Render per-stage and composite rows.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title("Multi-stage application analysis")
            .header(["Stage", "t_soft", "t_accel", "speedup", "where"]);
        for s in &self.stages {
            t.row([
                s.name.clone(),
                sci(s.t_soft.seconds()),
                sci(s.t_accel.seconds()),
                format!("{:.2}", s.speedup),
                if s.prediction.is_some() {
                    "FPGA"
                } else {
                    "CPU"
                }
                .to_string(),
            ]);
        }
        t.row([
            "TOTAL".to_string(),
            sci(self.total_soft.seconds()),
            sci(self.total_accel.seconds()),
            format!("{:.2}", self.speedup),
            String::new(),
        ]);
        format!(
            "{}Amdahl ceiling: {:.1}x\n",
            t.render(),
            self.amdahl_ceiling()
        )
    }
}

/// Analyze a staged application: each FPGA stage gets its own throughput test;
/// software stages pass through.
pub fn analyze(stages: &[Stage]) -> Result<MultiStageReport, RatError> {
    if stages.is_empty() {
        return Err(RatError::param(
            "multi-stage analysis needs at least one stage",
        ));
    }
    let mut results = Vec::with_capacity(stages.len());
    for stage in stages {
        let (t_accel, prediction) = match stage {
            Stage::Fpga(input) => {
                let p = ThroughputPrediction::analyze(input)?;
                (throughput::t_rc(input), Some(p))
            }
            Stage::Software { t_soft, name } => {
                let t = t_soft.seconds();
                if !(t.is_finite() && t > 0.0) {
                    return Err(RatError::quantity(
                        format!("stage.{name}.t_soft"),
                        format!("software stage '{name}' needs a positive t_soft, got {t} s"),
                    ));
                }
                (*t_soft, None)
            }
        };
        results.push(StageResult {
            name: stage.name().to_string(),
            t_soft: stage.t_soft(),
            t_accel,
            speedup: stage.t_soft() / t_accel,
            prediction,
        });
    }
    let total_soft: Seconds = results.iter().map(|s| s.t_soft).sum();
    let total_accel: Seconds = results.iter().map(|s| s.t_accel).sum();
    Ok(MultiStageReport {
        stages: results,
        total_soft,
        total_accel,
        speedup: total_soft / total_accel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;

    fn two_stage() -> Vec<Stage> {
        vec![
            Stage::Fpga(pdf1d_example()), // 0.578 s -> ~0.0546 s (10.6x)
            Stage::Software {
                name: "post-processing".into(),
                t_soft: Seconds::new(0.2),
            },
        ]
    }

    #[test]
    fn composite_speedup_follows_amdahl() {
        let r = analyze(&two_stage()).unwrap();
        assert!((r.total_soft.seconds() - 0.778).abs() < 1e-9);
        // Accelerated: 0.0546 + 0.2 = 0.2546; speedup ~3.06.
        assert!(
            (r.speedup - 0.778 / 0.2546).abs() < 0.02,
            "speedup {}",
            r.speedup
        );
        // Composite sits between the stage speedups.
        assert!(r.speedup > 1.0 && r.speedup < 10.6);
    }

    #[test]
    fn amdahl_ceiling_bounded_by_software_residue() {
        let r = analyze(&two_stage()).unwrap();
        // Ceiling = 0.778 / 0.2 = 3.89.
        assert!((r.amdahl_ceiling() - 3.89).abs() < 0.01);
        assert!(r.speedup < r.amdahl_ceiling());
    }

    #[test]
    fn all_fpga_stages_have_infinite_ceiling() {
        let r = analyze(&[Stage::Fpga(pdf1d_example())]).unwrap();
        assert_eq!(r.amdahl_ceiling(), f64::INFINITY);
        assert!((r.speedup - 10.6).abs() < 0.05);
    }

    #[test]
    fn bottleneck_is_largest_accelerated_stage() {
        let r = analyze(&two_stage()).unwrap();
        assert_eq!(r.bottleneck().unwrap().name, "post-processing");
    }

    #[test]
    fn software_stage_speedup_is_one() {
        let r = analyze(&two_stage()).unwrap();
        assert_eq!(r.stages[1].speedup, 1.0);
        assert!(r.stages[1].prediction.is_none());
        assert!(r.stages[0].prediction.is_some());
    }

    #[test]
    fn empty_and_invalid_stages_rejected() {
        assert!(analyze(&[]).is_err());
        let bad = vec![Stage::Software {
            name: "x".into(),
            t_soft: Seconds::ZERO,
        }];
        assert!(analyze(&bad).is_err());
    }

    #[test]
    fn render_lists_stages_and_total() {
        let r = analyze(&two_stage()).unwrap();
        let s = r.render();
        assert!(s.contains("1-D PDF"));
        assert!(s.contains("post-processing"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("Amdahl ceiling"));
    }
}
