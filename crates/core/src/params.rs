//! RAT input parameters (the paper's Table 1).
//!
//! The worksheet groups its inputs into four categories: dataset,
//! communication, computation, and software. Dimensioned inputs use the
//! typed quantities of [`crate::quantity`] — bandwidth as [`Throughput`],
//! clock as [`Freq`], time as [`Seconds`] — with unit conversions confined
//! to constructors and rendering.

use crate::error::RatError;
use crate::quantity::{Bytes, Elements, Freq, Seconds, Throughput};
use serde::{Deserialize, Serialize};

/// Dataset parameters: how big one buffered block of the problem is.
///
/// An *element* is the paper's unit tying communication to computation: "a
/// value in an array to be sorted, an atom in a molecular dynamics simulation,
/// or a single character in a string-matching algorithm" (§3.1). Elements in
/// and out may differ — the 1-D PDF consumes 512 elements per iteration but
/// emits one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetParams {
    /// Elements transferred host→FPGA per iteration (`N_elements,input`).
    pub elements_in: u64,
    /// Elements transferred FPGA→host per iteration (`N_elements,output`).
    pub elements_out: u64,
    /// Bytes per element on the communication channel (`N_bytes/element`).
    pub bytes_per_element: u64,
}

/// Communication parameters: properties of the CPU–FPGA interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommParams {
    /// Documented peak interconnect bandwidth (`throughput_ideal`; the paper
    /// quotes MB/s). Worksheets may write a bare bytes/second number or a
    /// suffixed string such as `"1000 MB/s"` or `"8 Gbps"`.
    pub ideal_bandwidth: Throughput,
    /// Fraction of ideal throughput sustained host→FPGA (`alpha_write`),
    /// from a microbenchmark.
    pub alpha_write: f64,
    /// Fraction of ideal throughput sustained FPGA→host (`alpha_read`).
    pub alpha_read: f64,
}

/// Computation parameters: how much work per element and how fast the design
/// retires it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompParams {
    /// Operations per element (`N_ops/element`), measured from the algorithm
    /// structure. What counts as one "operation" is the designer's choice, as
    /// long as `throughput_proc` uses the same convention (§3.1's Booth
    /// multiplier discussion).
    pub ops_per_element: f64,
    /// Operations completed per clock cycle (`throughput_proc`). Equals
    /// ops/element for a fully pipelined design; a fraction of it otherwise.
    pub throughput_proc: f64,
    /// FPGA clock frequency (`f_clock`). Worksheets may write a bare Hz
    /// number or a suffixed string such as `"133 MHz"`.
    pub fclock: Freq,
}

/// Software baseline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftwareParams {
    /// Execution time of the sequential software baseline (`t_soft`), for the
    /// *whole* problem. Worksheets may write bare seconds or `"578 ms"`.
    pub t_soft: Seconds,
    /// Number of communication+computation iterations needed to cover the
    /// whole problem (`N_iter`).
    pub iterations: u64,
}

/// Buffering discipline assumed by the prediction (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Buffering {
    /// Single-buffered: communication and computation serialize (Eq. 5).
    #[default]
    Single,
    /// Double-buffered: the longer of communication and computation hides the
    /// shorter at steady state (Eq. 6). Only meaningful with enough iterations
    /// to amortize the pipeline startup.
    Double,
}

/// A complete RAT worksheet input (the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatInput {
    /// Name of the application design under analysis.
    pub name: String,
    /// Dataset parameters.
    pub dataset: DatasetParams,
    /// Communication parameters.
    pub comm: CommParams,
    /// Computation parameters.
    pub comp: CompParams,
    /// Software baseline parameters.
    pub software: SoftwareParams,
    /// Buffering assumption.
    pub buffering: Buffering,
}

impl RatInput {
    /// Copy every numeric parameter block from `other`, leaving `name`
    /// untouched. The parameter blocks are all `Copy`, so this is a handful
    /// of struct assignments — it lets hot loops (Monte-Carlo sampling,
    /// corner enumeration) restore a scratch input from a base point without
    /// re-allocating the name string each time.
    pub fn copy_params_from(&mut self, other: &RatInput) {
        self.dataset = other.dataset;
        self.comm = other.comm;
        self.comp = other.comp;
        self.software = other.software;
        self.buffering = other.buffering;
    }

    /// Validate every parameter, returning the first violation.
    ///
    /// Checks positivity/finiteness of rates and times, `alpha` in `(0, 1]`,
    /// and at least one iteration. Dimensioned fields report a field-named
    /// [`RatError::InvalidQuantity`]; dimensionless ones report
    /// [`RatError::InvalidParameter`]. `elements_out` may be zero (results may
    /// accumulate on-chip), but `elements_in` must be positive — a design that
    /// consumes no data computes nothing RAT can reason about.
    pub fn validate(&self) -> Result<(), RatError> {
        let d = &self.dataset;
        if d.elements_in == 0 {
            return Err(RatError::param("elements_in must be at least 1"));
        }
        if d.bytes_per_element == 0 {
            return Err(RatError::param("bytes_per_element must be at least 1"));
        }
        let c = &self.comm;
        let bw = c.ideal_bandwidth.bytes_per_sec();
        if !(bw.is_finite() && bw > 0.0) {
            return Err(RatError::quantity(
                "comm.ideal_bandwidth",
                format!("must be positive and finite, got {bw} B/s"),
            ));
        }
        for (name, alpha) in [("alpha_write", c.alpha_write), ("alpha_read", c.alpha_read)] {
            if !(alpha.is_finite() && alpha > 0.0 && alpha <= 1.0) {
                return Err(RatError::param(format!(
                    "{name} must be in (0, 1], got {alpha}"
                )));
            }
        }
        let p = &self.comp;
        if !(p.ops_per_element.is_finite() && p.ops_per_element > 0.0) {
            return Err(RatError::param(format!(
                "ops_per_element must be positive, got {}",
                p.ops_per_element
            )));
        }
        if !(p.throughput_proc.is_finite() && p.throughput_proc > 0.0) {
            return Err(RatError::param(format!(
                "throughput_proc must be positive, got {}",
                p.throughput_proc
            )));
        }
        let hz = p.fclock.hz();
        if !(hz.is_finite() && hz > 0.0) {
            return Err(RatError::quantity(
                "comp.fclock",
                format!("must be positive and finite, got {hz} Hz"),
            ));
        }
        let s = &self.software;
        let t = s.t_soft.seconds();
        if !(t.is_finite() && t > 0.0) {
            return Err(RatError::quantity(
                "software.t_soft",
                format!("must be positive and finite, got {t} s"),
            ));
        }
        if s.iterations == 0 {
            return Err(RatError::param("iterations must be at least 1"));
        }
        Ok(())
    }

    /// Bytes moved host→FPGA per iteration.
    pub fn input_bytes(&self) -> Bytes {
        Elements::new(self.dataset.elements_in) * Bytes::new(self.dataset.bytes_per_element)
    }

    /// Bytes moved FPGA→host per iteration.
    pub fn output_bytes(&self) -> Bytes {
        Elements::new(self.dataset.elements_out) * Bytes::new(self.dataset.bytes_per_element)
    }

    /// A copy of this input with a different clock frequency — the paper's
    /// Tables 3/6/9 evaluate each design at 75, 100, and 150 MHz.
    pub fn with_fclock(&self, fclock: Freq) -> Self {
        let mut next = self.clone();
        next.comp.fclock = fclock;
        next
    }

    /// A copy with a different buffering assumption.
    pub fn with_buffering(&self, buffering: Buffering) -> Self {
        let mut next = self.clone();
        next.buffering = buffering;
        next
    }
}

#[cfg(test)]
pub(crate) fn pdf1d_example() -> RatInput {
    // The paper's Table 2, at 150 MHz.
    RatInput {
        name: "1-D PDF".into(),
        dataset: DatasetParams {
            elements_in: 512,
            elements_out: 1,
            bytes_per_element: 4,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9),
            alpha_write: 0.37,
            alpha_read: 0.16,
        },
        comp: CompParams {
            ops_per_element: 768.0,
            throughput_proc: 20.0,
            fclock: Freq::from_mhz(150.0),
        },
        software: SoftwareParams {
            t_soft: Seconds::new(0.578),
            iterations: 400,
        },
        buffering: Buffering::Single,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_input_validates() {
        assert!(pdf1d_example().validate().is_ok());
    }

    #[test]
    fn rejects_zero_elements_in() {
        let mut i = pdf1d_example();
        i.dataset.elements_in = 0;
        assert!(
            matches!(i.validate(), Err(RatError::InvalidParameter(m)) if m.contains("elements_in"))
        );
    }

    #[test]
    fn allows_zero_elements_out() {
        let mut i = pdf1d_example();
        i.dataset.elements_out = 0;
        assert!(i.validate().is_ok());
    }

    #[test]
    fn rejects_alpha_out_of_range() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let mut i = pdf1d_example();
            i.comm.alpha_read = bad;
            assert!(
                i.validate().is_err(),
                "alpha_read = {bad} should be rejected"
            );
        }
        let mut i = pdf1d_example();
        i.comm.alpha_write = 1.0;
        assert!(i.validate().is_ok(), "alpha exactly 1.0 is legal");
    }

    #[test]
    fn rejects_nonpositive_rates_and_times() {
        let mut i = pdf1d_example();
        i.comp.fclock = Freq::from_hz(0.0);
        assert!(
            matches!(i.validate(), Err(RatError::InvalidQuantity { field, .. }) if field == "comp.fclock")
        );
        let mut i = pdf1d_example();
        i.comp.throughput_proc = -3.0;
        assert!(i.validate().is_err());
        let mut i = pdf1d_example();
        i.software.t_soft = Seconds::ZERO;
        assert!(
            matches!(i.validate(), Err(RatError::InvalidQuantity { field, .. }) if field == "software.t_soft")
        );
        let mut i = pdf1d_example();
        i.software.iterations = 0;
        assert!(i.validate().is_err());
        let mut i = pdf1d_example();
        i.comm.ideal_bandwidth = Throughput::from_bytes_per_sec(f64::NAN);
        assert!(
            matches!(i.validate(), Err(RatError::InvalidQuantity { field, .. }) if field == "comm.ideal_bandwidth")
        );
    }

    #[test]
    fn byte_accessors() {
        let i = pdf1d_example();
        assert_eq!(i.input_bytes(), Bytes::new(2048));
        assert_eq!(i.output_bytes(), Bytes::new(4));
    }

    #[test]
    fn with_fclock_changes_only_clock() {
        let i = pdf1d_example();
        let j = i.with_fclock(Freq::from_mhz(75.0));
        assert_eq!(j.comp.fclock, Freq::from_hz(75.0e6));
        assert_eq!(j.comp.ops_per_element, i.comp.ops_per_element);
        assert_eq!(j.dataset, i.dataset);
    }

    #[test]
    fn serde_round_trip_via_toml() {
        let i = pdf1d_example();
        let text = toml::to_string(&i).unwrap();
        let back: RatInput = toml::from_str(&text).unwrap();
        assert_eq!(back, i);
    }

    #[test]
    fn worksheet_accepts_suffixed_quantity_strings() {
        let text = toml::to_string(&pdf1d_example()).unwrap();
        let suffixed = text
            .replace(
                "ideal_bandwidth = 1000000000.0",
                "ideal_bandwidth = \"1000 MB/s\"",
            )
            .replace("fclock = 150000000.0", "fclock = \"150 MHz\"")
            .replace("t_soft = 0.578", "t_soft = \"578 ms\"");
        assert_ne!(text, suffixed, "replacements must hit");
        let back: RatInput = toml::from_str(&suffixed).unwrap();
        let reference = pdf1d_example();
        assert_eq!(back.comm.ideal_bandwidth, reference.comm.ideal_bandwidth);
        assert_eq!(back.comp.fclock, reference.comp.fclock);
        assert!((back.software.t_soft.seconds() - 0.578).abs() < 1e-12);
    }

    #[test]
    fn worksheet_rejects_bad_quantity_with_field_name() {
        let text = toml::to_string(&pdf1d_example()).unwrap();
        let bad = text.replace("fclock = 150000000.0", "fclock = \"150 parsecs\"");
        let err = toml::from_str::<RatInput>(&bad).unwrap_err().to_string();
        assert!(err.contains("fclock"), "error must name the field: {err}");
    }
}
