//! Design-side resource estimation.
//!
//! A-priori resource counts are inexact — the paper is frank that "a precise
//! count is nearly impossible without an actual HDL implementation" — but they
//! are "still necessary to avoid creating initial designs that are physically
//! unrealizable." This module provides the accounting helpers RAT expects its
//! users to apply with "vendor-specific knowledge", e.g. the paper's example
//! rule that a 32-bit fixed-point multiply on a Xilinx V4 needs two dedicated
//! 18-bit multipliers.

use serde::{Deserialize, Serialize};

/// A design's estimated resource usage, in the target device's units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// DSP blocks (vendor granularity).
    pub dsp: u32,
    /// Block RAMs.
    pub bram: u32,
    /// Logic cells (slices / ALUTs per device).
    pub logic: u64,
}

impl ResourceEstimate {
    /// Elementwise sum of two estimates (composing kernels in one design).
    pub fn plus(self, other: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            dsp: self.dsp + other.dsp,
            bram: self.bram + other.bram,
            logic: self.logic + other.logic,
        }
    }

    /// The estimate for `n` replicated parallel kernels plus this base.
    pub fn replicate(self, n: u32) -> ResourceEstimate {
        ResourceEstimate {
            dsp: self.dsp * n,
            bram: self.bram * n,
            logic: self.logic * u64::from(n),
        }
    }
}

/// Dedicated multipliers needed for one `bits`-wide fixed-point multiply on a
/// device with `native_width`-bit multipliers, using the paper's convention:
/// one per `native_width`-bit span of the operand (the paper's example:
/// "32-bit fixed-point multiplications on Xilinx V4 FPGAs require two
/// dedicated 18-bit multipliers").
pub fn dsps_for_multiplier(bits: u32, native_width: u32) -> u32 {
    assert!(bits > 0 && native_width > 0, "widths must be positive");
    bits.div_ceil(native_width)
}

/// Block RAMs needed to hold `bytes` of buffer, given `bram_bytes` per block.
/// Any non-empty buffer takes at least one block.
pub fn brams_for_buffer(bytes: u64, bram_bytes: u64) -> u32 {
    assert!(bram_bytes > 0, "block size must be positive");
    bytes.div_ceil(bram_bytes) as u32
}

/// Bytes in one 18-kbit Xilinx block RAM.
pub const XILINX_BRAM18_BYTES: u64 = 18 * 1024 / 8;

/// Bytes in one Altera M4K block (4.5 kbit including parity; 4 kbit usable).
pub const ALTERA_M4K_BYTES: u64 = 4 * 1024 / 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rule_32bit_needs_two_18bit_multipliers() {
        assert_eq!(dsps_for_multiplier(32, 18), 2);
    }

    #[test]
    fn an_18bit_multiply_fits_one_mac() {
        // The 1-D PDF design chose 18-bit fixed point "so that only one Xilinx
        // 18x18 MAC unit would be needed per multiplication".
        assert_eq!(dsps_for_multiplier(18, 18), 1);
        assert_eq!(dsps_for_multiplier(17, 18), 1);
        assert_eq!(dsps_for_multiplier(19, 18), 2);
    }

    #[test]
    fn wide_multiplies_scale() {
        assert_eq!(dsps_for_multiplier(54, 18), 3);
        assert_eq!(dsps_for_multiplier(64, 18), 4);
    }

    #[test]
    fn bram_counting_rounds_up() {
        assert_eq!(brams_for_buffer(0, XILINX_BRAM18_BYTES), 0);
        assert_eq!(brams_for_buffer(1, XILINX_BRAM18_BYTES), 1);
        assert_eq!(brams_for_buffer(2304, XILINX_BRAM18_BYTES), 1);
        assert_eq!(brams_for_buffer(2305, XILINX_BRAM18_BYTES), 2);
    }

    #[test]
    fn estimates_compose() {
        let a = ResourceEstimate {
            dsp: 2,
            bram: 3,
            logic: 100,
        };
        let b = ResourceEstimate {
            dsp: 1,
            bram: 0,
            logic: 50,
        };
        assert_eq!(
            a.plus(b),
            ResourceEstimate {
                dsp: 3,
                bram: 3,
                logic: 150
            }
        );
        assert_eq!(
            a.replicate(4),
            ResourceEstimate {
                dsp: 8,
                bram: 12,
                logic: 400
            }
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_multiplier_panics() {
        dsps_for_multiplier(0, 18);
    }
}
