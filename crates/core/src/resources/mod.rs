//! The RAT resource test (§3.3).
//!
//! "Most FPGA designs will be limited in size by the availability of three
//! common resources: on-chip memory, dedicated hardware functional units
//! (e.g. multipliers), and basic logic elements." This module models all
//! three: a device catalog ([`device`]), design-side estimates
//! ([`estimate`]), and the fit/scalability verdict ([`ResourceReport`]).

pub mod device;
pub mod estimate;

pub use device::{FpgaDevice, LogicKind};
pub use estimate::{dsps_for_multiplier, ResourceEstimate};

use crate::table::{pct, TextTable};
use serde::{Deserialize, Serialize};

/// Logic-utilization fraction above which routing strain makes timing closure
/// unlikely; the paper: "routing strain increases exponentially as logic
/// element utilization approaches maximum. Consequently, it is often unwise
/// (if not impossible) to fill the entire FPGA."
pub const ROUTING_STRAIN_THRESHOLD: f64 = 0.8;

/// Outcome of holding a design's estimate against a device's capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// The device analyzed against.
    pub device: FpgaDevice,
    /// The design's estimated usage.
    pub estimate: ResourceEstimate,
    /// DSP-block utilization fraction.
    pub dsp_util: f64,
    /// Block-RAM utilization fraction.
    pub bram_util: f64,
    /// Logic-element utilization fraction.
    pub logic_util: f64,
    /// Whether every resource fits (all utilizations <= 1).
    pub fits: bool,
    /// Whether logic utilization exceeds [`ROUTING_STRAIN_THRESHOLD`] —
    /// fitting on paper but at risk of failing place-and-route.
    pub routing_strain: bool,
}

impl ResourceReport {
    /// Run the resource test: compare `estimate` against `device`.
    pub fn analyze(device: FpgaDevice, estimate: ResourceEstimate) -> Self {
        let dsp_util = f64::from(estimate.dsp) / f64::from(device.dsp_blocks);
        let bram_util = f64::from(estimate.bram) / f64::from(device.bram_blocks);
        let logic_util = estimate.logic as f64 / device.logic_cells as f64;
        let fits = dsp_util <= 1.0 && bram_util <= 1.0 && logic_util <= 1.0;
        Self {
            device,
            estimate,
            dsp_util,
            bram_util,
            logic_util,
            fits,
            routing_strain: logic_util > ROUTING_STRAIN_THRESHOLD,
        }
    }

    /// The scaling headroom: how many more copies of the design's *parallel
    /// kernel* could be instantiated before the scarcest resource runs out.
    /// The paper uses this to note that the 1-D PDF's "relatively low resource
    /// usage … illustrates a potential for further speedup by including
    /// additional parallel kernels" while MD "was ultimately limited by the
    /// availability of multiplier resources".
    pub fn replication_headroom(&self) -> f64 {
        let max_util = self.dsp_util.max(self.bram_util).max(self.logic_util);
        if max_util == 0.0 {
            f64::INFINITY
        } else {
            1.0 / max_util
        }
    }

    /// The scarcest resource's name, driving the scalability verdict.
    pub fn limiting_resource(&self) -> &'static str {
        let m = self.dsp_util.max(self.bram_util).max(self.logic_util);
        if m == self.dsp_util {
            "DSP blocks"
        } else if m == self.bram_util {
            "block RAM"
        } else {
            self.device.logic_kind.name()
        }
    }

    /// Render in the paper's Table-4/7/10 layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title(format!("Resource usage ({})", self.device.name))
            .header(["FPGA Resource", "Utilization"]);
        t.row([self.device.dsp_name.to_string(), pct(self.dsp_util)]);
        t.row(["BRAMs".to_string(), pct(self.bram_util)]);
        t.row([
            self.device.logic_kind.name().to_string(),
            pct(self.logic_util),
        ]);
        let verdict = if !self.fits {
            format!("DOES NOT FIT: limited by {}", self.limiting_resource())
        } else if self.routing_strain {
            format!(
                "fits, but logic above {:.0}% — routing strain likely",
                ROUTING_STRAIN_THRESHOLD * 100.0
            )
        } else {
            format!(
                "fits; ~{:.1}x replication headroom (limited by {})",
                self.replication_headroom(),
                self.limiting_resource()
            )
        };
        format!("{}{verdict}\n", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_design_fits_with_headroom() {
        let dev = device::virtex4_lx100();
        let est = ResourceEstimate {
            dsp: 8,
            bram: 36,
            logic: 6000,
        };
        let r = ResourceReport::analyze(dev, est);
        assert!(r.fits);
        assert!(!r.routing_strain);
        assert!(r.replication_headroom() > 2.0);
    }

    #[test]
    fn oversized_design_does_not_fit() {
        let dev = device::virtex4_lx100();
        let est = ResourceEstimate {
            dsp: 200,
            bram: 10,
            logic: 1000,
        };
        let r = ResourceReport::analyze(dev, est);
        assert!(!r.fits);
        assert_eq!(r.limiting_resource(), "DSP blocks");
        assert!(r.render().contains("DOES NOT FIT"));
    }

    #[test]
    fn routing_strain_flagged_above_80_percent_logic() {
        let dev = device::virtex4_lx100();
        let est = ResourceEstimate {
            dsp: 1,
            bram: 1,
            logic: (dev.logic_cells as f64 * 0.85) as u64,
        };
        let r = ResourceReport::analyze(dev, est);
        assert!(r.fits);
        assert!(r.routing_strain);
        assert!(r.render().contains("routing strain"));
    }

    #[test]
    fn headroom_is_inverse_of_max_utilization() {
        let dev = device::virtex4_lx100(); // 96 DSPs
        let est = ResourceEstimate {
            dsp: 48,
            bram: 10,
            logic: 1000,
        };
        let r = ResourceReport::analyze(dev, est);
        assert!((r.replication_headroom() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_design_has_infinite_headroom() {
        let dev = device::virtex4_lx100();
        let r = ResourceReport::analyze(dev, ResourceEstimate::default());
        assert_eq!(r.replication_headroom(), f64::INFINITY);
    }

    #[test]
    fn render_names_device_and_resources() {
        let dev = device::stratix2_ep2s180();
        let est = ResourceEstimate {
            dsp: 700,
            bram: 300,
            logic: 90000,
        };
        let r = ResourceReport::analyze(dev, est);
        let s = r.render();
        assert!(s.contains("EP2S180"));
        assert!(s.contains("9-bit DSPs"));
        assert!(s.contains("ALUTs"));
    }
}
