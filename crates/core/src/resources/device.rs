//! FPGA device catalog.
//!
//! Capacities for the devices the paper's case studies target, from the
//! vendors' 2007-era datasheets (Xilinx DS112 for Virtex-4, Altera Stratix-II
//! handbook). RAT's resource test only needs the three headline capacities —
//! DSP blocks, block RAMs, logic elements — plus the vendor's naming for each.

use serde::{Deserialize, Serialize};

/// The flavour of basic logic element a vendor counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicKind {
    /// Xilinx slices (each: 2 LUTs + 2 flip-flops in Virtex-4).
    Slices,
    /// Altera adaptive look-up tables.
    Aluts,
    /// Generic LUT count for devices modelled loosely.
    Luts,
}

impl LogicKind {
    /// Vendor name used in resource tables.
    pub fn name(self) -> &'static str {
        match self {
            LogicKind::Slices => "Slices",
            LogicKind::Aluts => "ALUTs",
            LogicKind::Luts => "LUTs",
        }
    }
}

/// An FPGA device's headline capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Device name, e.g. "Xilinx Virtex-4 LX100".
    pub name: String,
    /// Vendor's name for the DSP resource (e.g. "48-bit DSPs", "9-bit DSPs") —
    /// the granularity differs per vendor, so counts are not comparable across
    /// devices.
    pub dsp_name: String,
    /// Number of DSP blocks (in the vendor's granularity).
    pub dsp_blocks: u32,
    /// Number of block RAMs.
    pub bram_blocks: u32,
    /// Number of logic cells (in `logic_kind` units).
    pub logic_cells: u64,
    /// What the logic cells are.
    pub logic_kind: LogicKind,
    /// Native width of one dedicated multiplier, in bits (18 for both Xilinx
    /// DSP48 and Altera's 18x18 mode).
    pub native_mult_width: u32,
}

/// Xilinx Virtex-4 LX100 — the user FPGA on the Nallatech H101-PCIXM card
/// (1-D and 2-D PDF case studies). 96 DSP48 slices, 240 18-kbit block RAMs,
/// 49,152 slices.
pub fn virtex4_lx100() -> FpgaDevice {
    FpgaDevice {
        name: "Xilinx Virtex-4 LX100".into(),
        dsp_name: "48-bit DSPs".into(),
        dsp_blocks: 96,
        bram_blocks: 240,
        logic_cells: 49_152,
        logic_kind: LogicKind::Slices,
        native_mult_width: 18,
    }
}

/// Xilinx Virtex-4 SX55 — the DSP-heavy sibling the paper cites as evidence of
/// multiplier demand ("families of chips (e.g. Xilinx Virtex-4 SX series) with
/// extra multipliers"). 512 DSP48 slices, 320 block RAMs, 24,576 slices.
pub fn virtex4_sx55() -> FpgaDevice {
    FpgaDevice {
        name: "Xilinx Virtex-4 SX55".into(),
        dsp_name: "48-bit DSPs".into(),
        dsp_blocks: 512,
        bram_blocks: 320,
        logic_cells: 24_576,
        logic_kind: LogicKind::Slices,
        native_mult_width: 18,
    }
}

/// Altera Stratix-II EP2S180 — the user FPGA in the XtremeData XD1000
/// (molecular-dynamics case study). 768 9-bit DSP elements (96 full DSP
/// blocks), 768 M4K block RAMs, 143,520 ALUTs.
pub fn stratix2_ep2s180() -> FpgaDevice {
    FpgaDevice {
        name: "Altera Stratix-II EP2S180".into(),
        dsp_name: "9-bit DSPs".into(),
        dsp_blocks: 768,
        bram_blocks: 768,
        logic_cells: 143_520,
        logic_kind: LogicKind::Aluts,
        native_mult_width: 18,
    }
}

/// Xilinx Virtex-4 LX25 — the entry-level sibling, useful for "would this
/// design fit a cheaper part?" iterations. 48 DSP48s, 72 block RAMs,
/// 10,752 slices.
pub fn virtex4_lx25() -> FpgaDevice {
    FpgaDevice {
        name: "Xilinx Virtex-4 LX25".into(),
        dsp_name: "48-bit DSPs".into(),
        dsp_blocks: 48,
        bram_blocks: 72,
        logic_cells: 10_752,
        logic_kind: LogicKind::Slices,
        native_mult_width: 18,
    }
}

/// Xilinx Virtex-5 LX330 — the next generation after the paper's hardware,
/// for "what would a part upgrade buy?" studies. 192 DSP48Es, 288 36-kbit
/// block RAMs, 51,840 slices (each twice a V4 slice).
pub fn virtex5_lx330() -> FpgaDevice {
    FpgaDevice {
        name: "Xilinx Virtex-5 LX330".into(),
        dsp_name: "48-bit DSPs".into(),
        dsp_blocks: 192,
        bram_blocks: 288,
        logic_cells: 51_840,
        logic_kind: LogicKind::Slices,
        native_mult_width: 18,
    }
}

/// All catalogued devices.
pub fn all_devices() -> Vec<FpgaDevice> {
    vec![
        virtex4_lx25(),
        virtex4_lx100(),
        virtex4_sx55(),
        virtex5_lx330(),
        stratix2_ep2s180(),
    ]
}

/// Find a device by (case-insensitive) substring of its name.
pub fn find_device(needle: &str) -> Option<FpgaDevice> {
    let lower = needle.to_lowercase();
    all_devices()
        .into_iter()
        .find(|d| d.name.to_lowercase().contains(&lower))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lx100_capacities_match_datasheet() {
        let d = virtex4_lx100();
        assert_eq!(d.dsp_blocks, 96);
        assert_eq!(d.bram_blocks, 240);
        assert_eq!(d.logic_cells, 49_152);
        assert_eq!(d.logic_kind, LogicKind::Slices);
    }

    #[test]
    fn sx_series_trades_logic_for_dsps() {
        let lx = virtex4_lx100();
        let sx = virtex4_sx55();
        assert!(sx.dsp_blocks > lx.dsp_blocks);
        assert!(sx.logic_cells < lx.logic_cells);
    }

    #[test]
    fn ep2s180_uses_altera_naming() {
        let d = stratix2_ep2s180();
        assert_eq!(d.logic_kind.name(), "ALUTs");
        assert_eq!(d.dsp_name, "9-bit DSPs");
        assert_eq!(d.dsp_blocks, 768);
    }

    #[test]
    fn catalog_is_nonempty_and_named() {
        let all = all_devices();
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|d| !d.name.is_empty()));
    }

    #[test]
    fn find_device_by_substring() {
        assert_eq!(find_device("lx100").unwrap().dsp_blocks, 96);
        assert_eq!(find_device("EP2S180").unwrap().logic_kind, LogicKind::Aluts);
        assert!(find_device("stratix").is_some());
        assert!(find_device("cyclone").is_none());
    }

    #[test]
    fn family_scaling_is_sensible() {
        assert!(virtex4_lx25().dsp_blocks < virtex4_lx100().dsp_blocks);
        assert!(virtex5_lx330().dsp_blocks > virtex4_lx100().dsp_blocks);
    }
}
