//! Chrome `trace_event` export.
//!
//! Emits the object form of the [Trace Event Format] — a `traceEvents` array
//! of `"ph": "X"` (complete) events — loadable in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev). Timestamps and durations are
//! microseconds with nanosecond precision (three decimals). Everything is
//! hand-rolled JSON: the repo has no serde_json, and the format is flat
//! enough that a small escaper suffices.
//!
//! Two producers share this module: [`super::Profile::to_chrome_json`]
//! (host-side wall-clock spans, `pid` 1) and the simulator's trace bridge
//! (simulated time on virtual resources, `pid` 2), so a combined view never
//! confuses host nanoseconds with simulated picoseconds.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use super::{ArgValue, Profile};

/// `pid` used for host wall-clock spans.
pub const PID_HOST: u64 = 1;
/// `pid` used for simulated-time spans bridged from the simulator's trace.
pub const PID_SIM: u64 = 2;

/// One complete ("X") event, ready to serialize.
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Category string (used by trace viewers for filtering).
    pub cat: String,
    /// Process id lane.
    pub pid: u64,
    /// Thread id lane within the process.
    pub tid: u64,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Extra `args` entries (`key` → already-primitive value).
    pub args: Vec<(String, ArgValue)>,
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(n) => n.to_string(),
        ArgValue::F64(x) => {
            if x.is_finite() {
                format!("{x}")
            } else {
                format!("\"{x}\"")
            }
        }
        ArgValue::Str(s) => format!("\"{}\"", escape(s)),
    }
}

fn event_json(e: &ChromeEvent) -> String {
    let mut args = String::new();
    for (i, (k, v)) in e.args.iter().enumerate() {
        if i > 0 {
            args.push_str(", ");
        }
        args.push_str(&format!("\"{}\": {}", escape(k), arg_json(v)));
    }
    format!(
        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": {}, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{{args}}}}}",
        escape(&e.name),
        escape(&e.cat),
        e.pid,
        e.tid,
        e.ts_us,
        e.dur_us,
    )
}

/// Serialize events (one per line inside the array) plus an optional
/// `metrics` object into the top-level trace wrapper.
pub fn render_events(events: &[ChromeEvent], metrics: &[(&str, u64)]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(&event_json(e));
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\n\"displayTimeUnit\": \"ms\",\n\"metrics\": {");
    for (i, (k, v)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {v}", escape(k)));
    }
    out.push_str("}}\n");
    out
}

/// Convert a drained [`Profile`] into chrome-trace JSON: one complete event
/// per span on `pid` [`PID_HOST`], ordered by `(tid, start, seq)` so output
/// is deterministic for a given execution, with the span's full path and
/// typed arguments in `args` and non-zero metrics in the trailer object.
pub fn render_profile(profile: &Profile) -> String {
    let mut spans: Vec<&super::SpanRecord> = profile.spans.iter().collect();
    spans.sort_by_key(|a| (a.tid, a.start_ns, a.seq));
    let events: Vec<ChromeEvent> = spans
        .iter()
        .map(|s| {
            let mut args = vec![("path".to_string(), ArgValue::Str(s.path.clone()))];
            for (k, v) in &s.args {
                args.push(((*k).to_string(), v.clone()));
            }
            ChromeEvent {
                name: s.name.to_string(),
                cat: "host".to_string(),
                pid: PID_HOST,
                tid: s.tid,
                ts_us: s.start_ns as f64 / 1e3,
                dur_us: s.duration_ns() as f64 / 1e3,
                args,
            }
        })
        .collect();
    let metrics: Vec<(&str, u64)> = profile
        .metrics
        .iter()
        .filter(|(_, v)| *v > 0)
        .map(|(m, v)| (m.name(), *v))
        .collect();
    render_events(&events, &metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Metric, Telemetry};

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn profile_renders_loadable_structure() {
        let t = Telemetry::new();
        t.enable();
        {
            let _a = t.span("run");
            let _b = t.span_args("job", vec![("job", ArgValue::U64(7))]);
        }
        t.add(Metric::EngineJobs, 1);
        let json = t.drain().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"job\""));
        assert!(json.contains("\"path\": \"run/job\""));
        assert!(json.contains("\"job\": 7"));
        assert!(json.contains("\"engine.jobs\": 1"));
        assert!(json.trim_end().ends_with("}}"));
        // Balanced braces/brackets — cheap structural sanity without a parser.
        let balance = |open: char, close: char| {
            json.chars().filter(|c| *c == open).count()
                == json.chars().filter(|c| *c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn events_order_by_tid_then_time() {
        let t = Telemetry::new();
        t.enable();
        {
            let _a = t.span("first");
        }
        {
            let _b = t.span("second");
        }
        let json = t.drain().to_chrome_json();
        let first = json.find("\"first\"").expect("first event");
        let second = json.find("\"second\"").expect("second event");
        assert!(first < second);
    }
}
