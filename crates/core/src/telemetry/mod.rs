//! Zero-dependency observability: wall-clock spans, typed metrics, exporters.
//!
//! The RAT pipeline explains where *predicted* time goes; this module explains
//! where *host* time goes while computing those predictions. It provides:
//!
//! - **Hierarchical wall-clock spans** ([`Telemetry::span`]): RAII guards that
//!   record `(name, path, thread, start, end)` with monotonic timestamps taken
//!   against a per-collector epoch. Nesting is tracked per thread via a span
//!   stack; a parent's logical context can be carried onto worker threads with
//!   [`Telemetry::scoped_prefix`] (the engine does this, so `engine.job` spans
//!   nest under the analysis phase that spawned them).
//! - **Typed counters and gauges** ([`Metric`]): a closed enum — simulator
//!   events processed, fast-forward periods skipped, cache hits/misses,
//!   Monte-Carlo samples, queue high-water marks — backed by one atomic each,
//!   so recording never allocates and never locks.
//! - **Two exporters**: a human-readable tree summary
//!   ([`Profile::render_tree`], deterministic in content ordering so snapshot
//!   tests are stable modulo timestamps) and Chrome `trace_event` JSON
//!   ([`Profile::to_chrome_json`], loadable in `chrome://tracing` or Perfetto).
//!
//! ## Cost model
//!
//! Collection is **off by default** and effectively free when disabled: every
//! recording entry point starts with one relaxed atomic load and returns
//! before touching thread-local state — the same shape as the simulator's
//! `TraceSink` no-op sink (DESIGN.md §11), except the decision is a runtime
//! branch rather than a monomorphized constant because the CLI flips it per
//! invocation. Hot inner loops (the simulator's event loop, the Monte-Carlo
//! sample loop) capture the enabled flag **once per run** into a local and
//! never re-check it per event.
//!
//! When enabled, each thread records into its own buffer (`ThreadBuf`,
//! registered on first use); buffers are only merged — and sorted into a
//! deterministic order — at [`Telemetry::drain`]. The per-thread buffer is
//! behind a `Mutex` solely so `drain` can read it from another thread; the
//! owning thread's accesses are uncontended.
//!
//! Tests that need isolation construct their own [`Telemetry`] instance; the
//! instrumented library code records against [`global`], which the CLI enables
//! for `--metrics` / `--profile <path.json>`.

pub mod chrome;
pub mod json;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A typed argument attached to a span (job index, kind, size, ...).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer argument (indexes, counts).
    U64(u64),
    /// A floating-point argument (rates, factors).
    F64(f64),
    /// A string argument (kinds, names).
    Str(String),
}

/// One completed span, recorded at exit.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span's own name (the last path segment).
    pub name: &'static str,
    /// Full slash-joined ancestry including `name`, e.g.
    /// `rat.run/sweep/engine.batch/engine.job`.
    pub path: String,
    /// Nesting depth on the recording thread (prefix segments included).
    pub depth: u32,
    /// Collector-assigned thread id (1-based, in thread-first-use order).
    pub tid: u64,
    /// Per-thread completion sequence number (drain sorts by `(tid, seq)`).
    pub seq: u64,
    /// Start, in nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the collector's epoch.
    pub end_ns: u64,
    /// Typed arguments attached at enter.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The closed set of typed metrics. Counters accumulate via
/// [`Telemetry::add`]; gauges track a maximum via [`Telemetry::gauge_max`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Engine jobs executed.
    EngineJobs,
    /// Engine batches executed.
    EngineBatches,
    /// Simulator runs executed (cache hits do not run the simulator).
    SimRuns,
    /// Discrete events popped by the simulator's event loop.
    SimEvents,
    /// Steady-state jumps taken by the fast-forward detector.
    FfJumps,
    /// Whole periods skipped arithmetically by fast-forward.
    FfPeriodsSkipped,
    /// High-water mark of the simulator's pending-event queue (gauge).
    QueueHighWater,
    /// Monte-Carlo samples evaluated.
    McSamples,
    /// Design points evaluated through the batched SoA kernels
    /// (`solve::batch`).
    BatchPoints,
    /// Simulator-cache hits (bridged from [`CacheStats`] at drain).
    ///
    /// [`CacheStats`]: https://docs.rs/fpga-sim
    CacheHits,
    /// Simulator-cache misses (bridged at drain).
    CacheMisses,
    /// Times a simulator-cache shard lock was contended (bridged at drain).
    ShardContention,
    /// Analytic-stage cache hits, summed over every stage
    /// (`solve::stages`).
    StageHits,
    /// Analytic-stage cache misses, summed over every stage.
    StageMisses,
    /// Communication-stage (Eqs. 1–3) cache hits.
    StageCommHits,
    /// Communication-stage cache misses.
    StageCommMisses,
    /// Computation-stage (Eq. 4) cache hits.
    StageCompHits,
    /// Computation-stage cache misses.
    StageCompMisses,
    /// Overlap/buffering-stage (Eqs. 5–6, 8–11) cache hits.
    StageOverlapHits,
    /// Overlap/buffering-stage cache misses.
    StageOverlapMisses,
    /// Speedup/ceiling-stage (Eq. 7) cache hits.
    StageSpeedupHits,
    /// Speedup/ceiling-stage cache misses.
    StageSpeedupMisses,
    /// Resource-test-stage (§3.3) cache hits.
    StageResourceHits,
    /// Resource-test-stage cache misses.
    StageResourceMisses,
    /// Guided-search generations run (`optimize`).
    OptimizeGenerations,
    /// Candidate design points evaluated by guided search.
    OptimizeEvals,
    /// Size of the final Pareto front reported by guided search.
    OptimizeFrontSize,
    /// Rendered-response cache hits (the serving layer's content-addressed
    /// cache; includes raw-body fast-path hits and single-flight waiters
    /// that received the leader's body).
    ResponseCacheHits,
    /// Rendered-response cache misses (each one is a leader computation).
    ResponseCacheMisses,
    /// Requests that blocked on another request's in-flight computation of
    /// the same response instead of recomputing it.
    ResponseCacheInflightWaits,
    /// Cross-request solve batches evaluated by the coalescer (only groups
    /// of two or more requests count — solo evaluations are the normal path).
    CoalesceBatches,
    /// Requests whose solve was evaluated inside a coalesced batch.
    CoalesceRequests,
}

impl Metric {
    /// Every metric, in rendering order.
    pub const ALL: [Metric; 32] = [
        Metric::EngineJobs,
        Metric::EngineBatches,
        Metric::SimRuns,
        Metric::SimEvents,
        Metric::FfJumps,
        Metric::FfPeriodsSkipped,
        Metric::QueueHighWater,
        Metric::McSamples,
        Metric::BatchPoints,
        Metric::CacheHits,
        Metric::CacheMisses,
        Metric::ShardContention,
        Metric::StageHits,
        Metric::StageMisses,
        Metric::StageCommHits,
        Metric::StageCommMisses,
        Metric::StageCompHits,
        Metric::StageCompMisses,
        Metric::StageOverlapHits,
        Metric::StageOverlapMisses,
        Metric::StageSpeedupHits,
        Metric::StageSpeedupMisses,
        Metric::StageResourceHits,
        Metric::StageResourceMisses,
        Metric::OptimizeGenerations,
        Metric::OptimizeEvals,
        Metric::OptimizeFrontSize,
        Metric::ResponseCacheHits,
        Metric::ResponseCacheMisses,
        Metric::ResponseCacheInflightWaits,
        Metric::CoalesceBatches,
        Metric::CoalesceRequests,
    ];

    /// Stable dotted name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            Metric::EngineJobs => "engine.jobs",
            Metric::EngineBatches => "engine.batches",
            Metric::SimRuns => "sim.runs",
            Metric::SimEvents => "sim.events",
            Metric::FfJumps => "sim.ff_jumps",
            Metric::FfPeriodsSkipped => "sim.ff_periods_skipped",
            Metric::QueueHighWater => "sim.queue_high_water",
            Metric::McSamples => "mc.samples",
            Metric::BatchPoints => "batch.points",
            Metric::CacheHits => "cache.hits",
            Metric::CacheMisses => "cache.misses",
            Metric::ShardContention => "cache.shard_contention",
            Metric::StageHits => "stage.hits",
            Metric::StageMisses => "stage.misses",
            Metric::StageCommHits => "stage.comm.hits",
            Metric::StageCommMisses => "stage.comm.misses",
            Metric::StageCompHits => "stage.comp.hits",
            Metric::StageCompMisses => "stage.comp.misses",
            Metric::StageOverlapHits => "stage.overlap.hits",
            Metric::StageOverlapMisses => "stage.overlap.misses",
            Metric::StageSpeedupHits => "stage.speedup.hits",
            Metric::StageSpeedupMisses => "stage.speedup.misses",
            Metric::StageResourceHits => "stage.resource.hits",
            Metric::StageResourceMisses => "stage.resource.misses",
            Metric::OptimizeGenerations => "optimize.generations",
            Metric::OptimizeEvals => "optimize.evals",
            Metric::OptimizeFrontSize => "optimize.front_size",
            Metric::ResponseCacheHits => "cache.response.hits",
            Metric::ResponseCacheMisses => "cache.response.misses",
            Metric::ResponseCacheInflightWaits => "cache.response.inflight_waits",
            Metric::CoalesceBatches => "coalesce.batches",
            Metric::CoalesceRequests => "coalesce.requests",
        }
    }

    /// Whether this metric is a high-water gauge (merged by `max`, not sum).
    pub fn is_gauge(self) -> bool {
        matches!(self, Metric::QueueHighWater)
    }

    fn index(self) -> usize {
        Metric::ALL
            .iter()
            .position(|m| *m == self)
            .expect("metric present in ALL")
    }
}

/// Per-thread recording state: the live span stack, a logical path prefix
/// (set by the engine so worker-thread spans nest under their spawner), and
/// the completed-span buffer.
#[derive(Default)]
struct ThreadState {
    stack: Vec<&'static str>,
    prefix: String,
    spans: Vec<SpanRecord>,
    seq: u64,
}

/// One thread's buffer, shared between the owning thread (records) and
/// [`Telemetry::drain`] (merges).
struct ThreadBuf {
    tid: u64,
    state: Mutex<ThreadState>,
}

thread_local! {
    /// This thread's buffers, keyed by collector id. Almost always length 1
    /// (the global collector); tests with private collectors add entries.
    static LOCAL_BUFS: RefCell<Vec<(u64, Arc<ThreadBuf>)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

/// A span/metric collector. Disabled on construction; recording calls are a
/// single relaxed atomic load while disabled.
pub struct Telemetry {
    id: u64,
    enabled: AtomicBool,
    epoch: Instant,
    registry: Mutex<Vec<Arc<ThreadBuf>>>,
    next_tid: AtomicU64,
    counters: [AtomicU64; Metric::ALL.len()],
}

impl Telemetry {
    /// A fresh, disabled collector with its own epoch and thread-id space.
    pub fn new() -> Self {
        Telemetry {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            registry: Mutex::new(Vec::new()),
            next_tid: AtomicU64::new(1),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Start collecting.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop collecting. Already-open spans still record at exit.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is currently on. Hot loops should read this once per
    /// run into a local rather than per event.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// This thread's buffer for this collector, creating and registering it
    /// on first use.
    fn buf(&self) -> Arc<ThreadBuf> {
        LOCAL_BUFS.with(|bufs| {
            let mut bufs = bufs.borrow_mut();
            if let Some((_, b)) = bufs.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(b);
            }
            let buf = Arc::new(ThreadBuf {
                tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                state: Mutex::new(ThreadState::default()),
            });
            self.registry
                .lock()
                .expect("telemetry registry poisoned")
                .push(Arc::clone(&buf));
            bufs.push((self.id, Arc::clone(&buf)));
            buf
        })
    }

    /// Nanoseconds since this collector's epoch.
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Enter a span. Returns a guard that records the span when dropped; a
    /// no-op (single atomic load) when disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_args(name, Vec::new())
    }

    /// Enter a span carrying typed arguments.
    pub fn span_args(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { inner: None };
        }
        let buf = self.buf();
        let (path, depth) = {
            let mut st = buf.state.lock().expect("telemetry thread buffer poisoned");
            let mut path = String::with_capacity(
                st.prefix.len() + st.stack.iter().map(|s| s.len() + 1).sum::<usize>() + name.len(),
            );
            path.push_str(&st.prefix);
            for seg in &st.stack {
                path.push_str(seg);
                path.push('/');
            }
            path.push_str(name);
            let depth =
                u32::try_from(st.prefix.matches('/').count() + st.stack.len()).unwrap_or(u32::MAX);
            st.stack.push(name);
            (path, depth)
        };
        SpanGuard {
            inner: Some(GuardInner {
                buf,
                epoch: self.epoch,
                name,
                path,
                depth,
                start_ns: self.now_ns(),
                args,
            }),
        }
    }

    /// The current thread's open-span path (`"a/b/"`-style prefix ending in
    /// `/`, or empty at top level). Used to re-root spans recorded on worker
    /// threads under the logical parent that spawned them.
    pub fn current_path_prefix(&self) -> String {
        if !self.is_enabled() {
            return String::new();
        }
        let buf = self.buf();
        let st = buf.state.lock().expect("telemetry thread buffer poisoned");
        let mut p = st.prefix.clone();
        for seg in &st.stack {
            p.push_str(seg);
            p.push('/');
        }
        p
    }

    /// Install `prefix` as this thread's logical ancestry until the returned
    /// guard drops (restoring the previous prefix). No-op when disabled.
    pub fn scoped_prefix(&self, prefix: &str) -> PrefixGuard {
        if !self.is_enabled() || prefix.is_empty() {
            return PrefixGuard { inner: None };
        }
        let buf = self.buf();
        let previous = {
            let mut st = buf.state.lock().expect("telemetry thread buffer poisoned");
            std::mem::replace(&mut st.prefix, prefix.to_string())
        };
        PrefixGuard {
            inner: Some((buf, previous)),
        }
    }

    /// Add `n` to a counter. One atomic load + one atomic add when enabled.
    pub fn add(&self, metric: Metric, n: u64) {
        if self.is_enabled() {
            self.counters[metric.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise a gauge to at least `v` (high-water semantics).
    pub fn gauge_max(&self, metric: Metric, v: u64) {
        if self.is_enabled() {
            self.counters[metric.index()].fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Merge every thread's buffer into one deterministic [`Profile`] and
    /// reset the collector (spans taken, counters zeroed). Span order is
    /// `(tid, seq)` — stable for a given execution regardless of drain timing.
    pub fn drain(&self) -> Profile {
        let mut spans = Vec::new();
        let mut open_spans = 0usize;
        for buf in self
            .registry
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
        {
            let mut st = buf.state.lock().expect("telemetry thread buffer poisoned");
            open_spans += st.stack.len();
            spans.append(&mut st.spans);
        }
        spans.sort_by_key(|a| (a.tid, a.seq));
        let metrics = Metric::ALL
            .iter()
            .map(|m| (*m, self.counters[m.index()].swap(0, Ordering::Relaxed)))
            .collect();
        Profile {
            spans,
            metrics,
            open_spans,
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("id", &self.id)
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

struct GuardInner {
    buf: Arc<ThreadBuf>,
    epoch: Instant,
    name: &'static str,
    path: String,
    depth: u32,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII span guard: records the span into the owning thread's buffer when
/// dropped (including during unwinding, so every enter has a matching exit).
#[must_use = "a span guard records when dropped; binding it to _ ends the span immediately"]
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(g) = self.inner.take() else { return };
        let end_ns = u64::try_from(g.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut st = g
            .buf
            .state
            .lock()
            .expect("telemetry thread buffer poisoned");
        // Guards drop in LIFO order per thread, so the popped name is ours.
        st.stack.pop();
        st.seq += 1;
        let seq = st.seq;
        let tid = g.buf.tid;
        st.spans.push(SpanRecord {
            name: g.name,
            path: g.path,
            depth: g.depth,
            tid,
            seq,
            start_ns: g.start_ns,
            end_ns,
            args: g.args,
        });
    }
}

/// Guard restoring a thread's previous logical prefix on drop.
#[must_use = "binding a prefix guard to _ removes the prefix immediately"]
pub struct PrefixGuard {
    inner: Option<(Arc<ThreadBuf>, String)>,
}

impl Drop for PrefixGuard {
    fn drop(&mut self) {
        if let Some((buf, previous)) = self.inner.take() {
            buf.state
                .lock()
                .expect("telemetry thread buffer poisoned")
                .prefix = previous;
        }
    }
}

/// A drained snapshot: every completed span plus the metric values.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Completed spans, sorted by `(tid, seq)`.
    pub spans: Vec<SpanRecord>,
    /// Every metric with its drained value (zeros included), in
    /// [`Metric::ALL`] order.
    pub metrics: Vec<(Metric, u64)>,
    /// Spans still open at drain time (0 when collection is balanced).
    pub open_spans: usize,
}

impl Profile {
    /// This profile's value for `metric`.
    pub fn metric(&self, metric: Metric) -> u64 {
        self.metrics
            .iter()
            .find(|(m, _)| *m == metric)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Monte-Carlo sampling rate, derived from [`Metric::McSamples`] and the
    /// total wall time of `uncertainty` spans. `None` when no MC ran.
    pub fn mc_samples_per_sec(&self) -> Option<f64> {
        let samples = self.metric(Metric::McSamples);
        if samples == 0 {
            return None;
        }
        let ns: u64 = self
            .spans
            .iter()
            .filter(|s| s.name == "uncertainty")
            .map(SpanRecord::duration_ns)
            .sum();
        if ns == 0 {
            return None;
        }
        Some(samples as f64 * 1e9 / ns as f64)
    }

    /// Render the human-readable tree summary: spans aggregated by path
    /// (count, total, self time), children indented under parents, metrics
    /// appended. Ordering is lexicographic by path — deterministic for a
    /// given execution, so snapshots are stable once durations are scrubbed
    /// (every volatile field is a `key=value` token).
    pub fn render_tree(&self) -> String {
        use std::collections::BTreeMap;
        let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = agg.entry(s.path.as_str()).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.duration_ns();
        }
        // Self time: a node's total minus its direct children's totals.
        let mut self_ns: BTreeMap<&str, u64> = agg.iter().map(|(p, (_, t))| (*p, *t)).collect();
        for (path, (_, total)) in &agg {
            if let Some((parent, _)) = path.rsplit_once('/') {
                if let Some(p) = self_ns.get_mut(parent) {
                    *p = p.saturating_sub(*total);
                }
            }
        }
        let mut out = String::from("wall-clock profile:\n");
        if agg.is_empty() {
            out.push_str("  (no spans recorded)\n");
        }
        for (path, (count, total)) in &agg {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let indent = "  ".repeat(depth + 1);
            let label = format!("{indent}{name}");
            out.push_str(&format!(
                "{label:<40} count={count} total={} self={}\n",
                fmt_ns(*total),
                fmt_ns(self_ns.get(path).copied().unwrap_or(0)),
            ));
        }
        out.push_str("metrics:\n");
        let mut any = false;
        for (m, v) in &self.metrics {
            if *v > 0 {
                any = true;
                out.push_str(&format!("  {:<30} {v}\n", m.name()));
            }
        }
        if let Some(rate) = self.mc_samples_per_sec() {
            any = true;
            out.push_str(&format!("  {:<30} rate={rate:.0}\n", "mc.samples_per_sec"));
        }
        if !any {
            out.push_str("  (no metrics recorded)\n");
        }
        out
    }

    /// Export as Chrome `trace_event` JSON (see [`chrome`]).
    pub fn to_chrome_json(&self) -> String {
        chrome::render_profile(self)
    }
}

/// Format a nanosecond duration with an adaptive unit (`ns`/`us`/`ms`/`s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The process-wide collector the instrumented library layers record against
/// and the CLI drains for `--metrics` / `--profile`.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

/// Whether the global collector is recording.
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Enter a span on the global collector.
pub fn span(name: &'static str) -> SpanGuard {
    global().span(name)
}

/// Enter a span with arguments on the global collector.
pub fn span_args(name: &'static str, args: Vec<(&'static str, ArgValue)>) -> SpanGuard {
    global().span_args(name, args)
}

/// Add to a counter on the global collector.
pub fn add(metric: Metric, n: u64) {
    global().add(metric, n);
}

/// Raise a gauge on the global collector.
pub fn gauge_max(metric: Metric, v: u64) {
    global().gauge_max(metric, v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let t = Telemetry::new();
        {
            let _a = t.span("a");
            let _b = t.span("b");
        }
        t.add(Metric::EngineJobs, 5);
        t.gauge_max(Metric::QueueHighWater, 9);
        let p = t.drain();
        assert!(p.spans.is_empty());
        assert_eq!(p.metric(Metric::EngineJobs), 0);
        assert_eq!(p.open_spans, 0);
    }

    #[test]
    fn spans_nest_and_paths_compose() {
        let t = Telemetry::new();
        t.enable();
        {
            let _a = t.span("a");
            {
                let _b = t.span_args("b", vec![("job", ArgValue::U64(3))]);
            }
            let _c = t.span("c");
        }
        let p = t.drain();
        let paths: Vec<&str> = p.spans.iter().map(|s| s.path.as_str()).collect();
        // Exit order: b closes first, then c, then a.
        assert_eq!(paths, vec!["a/b", "a/c", "a"]);
        assert_eq!(p.spans[0].depth, 1);
        assert_eq!(p.spans[2].depth, 0);
        assert_eq!(p.spans[0].args, vec![("job", ArgValue::U64(3))]);
        assert_eq!(p.open_spans, 0);
        // Parent brackets child.
        assert!(p.spans[2].start_ns <= p.spans[0].start_ns);
        assert!(p.spans[2].end_ns >= p.spans[0].end_ns);
    }

    #[test]
    fn prefix_reroots_worker_spans() {
        let t = Telemetry::new();
        t.enable();
        let parent = {
            let _a = t.span("phase");
            t.current_path_prefix()
        };
        assert_eq!(parent, "phase/");
        {
            let _p = t.scoped_prefix(&parent);
            let _j = t.span("job");
        }
        // Prefix restored after the guard.
        assert_eq!(t.current_path_prefix(), "");
        let p = t.drain();
        let job = p.spans.iter().find(|s| s.name == "job").expect("job span");
        assert_eq!(job.path, "phase/job");
        assert_eq!(job.depth, 1);
    }

    #[test]
    fn counters_sum_and_gauges_max() {
        let t = Telemetry::new();
        t.enable();
        t.add(Metric::SimEvents, 10);
        t.add(Metric::SimEvents, 5);
        t.gauge_max(Metric::QueueHighWater, 4);
        t.gauge_max(Metric::QueueHighWater, 9);
        t.gauge_max(Metric::QueueHighWater, 2);
        let p = t.drain();
        assert_eq!(p.metric(Metric::SimEvents), 15);
        assert_eq!(p.metric(Metric::QueueHighWater), 9);
        // Drain resets.
        assert_eq!(t.drain().metric(Metric::SimEvents), 0);
        assert!(Metric::QueueHighWater.is_gauge());
        assert!(!Metric::SimEvents.is_gauge());
    }

    #[test]
    fn threads_merge_deterministically_at_drain() {
        let t = Arc::new(Telemetry::new());
        t.enable();
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let t2 = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for j in 0..i + 1 {
                    let _s = t2.span_args("w", vec![("j", ArgValue::U64(j))]);
                }
            }));
        }
        for h in handles {
            h.join().expect("worker thread");
        }
        let p = t.drain();
        assert_eq!(p.spans.len(), 1 + 2 + 3 + 4);
        assert_eq!(p.open_spans, 0);
        // Sorted by (tid, seq).
        let keys: Vec<(u64, u64)> = p.spans.iter().map(|s| (s.tid, s.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn tree_summary_aggregates_and_orders() {
        let t = Telemetry::new();
        t.enable();
        for _ in 0..3 {
            let _a = t.span("outer");
            let _b = t.span("inner");
        }
        t.add(Metric::EngineJobs, 3);
        let p = t.drain();
        let tree = p.render_tree();
        let outer_line = tree
            .lines()
            .position(|l| l.contains("outer"))
            .expect("outer");
        let inner_line = tree
            .lines()
            .position(|l| l.trim_start().starts_with("inner"))
            .expect("inner");
        assert!(
            outer_line < inner_line,
            "parent renders before child:\n{tree}"
        );
        assert!(tree.contains("count=3"), "{tree}");
        assert!(tree.contains("engine.jobs"), "{tree}");
        assert!(tree.contains("total="), "{tree}");
        assert!(tree.contains("self="), "{tree}");
    }

    #[test]
    fn mc_rate_derives_from_samples_and_span_time() {
        let t = Telemetry::new();
        t.enable();
        {
            let _u = t.span("uncertainty");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        t.add(Metric::McSamples, 1000);
        let p = t.drain();
        let rate = p.mc_samples_per_sec().expect("rate");
        assert!(rate > 0.0 && rate.is_finite(), "rate {rate}");
        assert!(p.render_tree().contains("mc.samples_per_sec"));
    }

    #[test]
    fn metric_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_ns(7), "7ns");
        assert_eq!(fmt_ns(7_500), "7.5us");
        assert_eq!(fmt_ns(7_500_000), "7.500ms");
        assert_eq!(fmt_ns(7_500_000_000), "7.500s");
    }
}
