//! A minimal JSON reader for validating exporter output.
//!
//! The workspace deliberately carries no `serde_json`; the exporters
//! ([`super::chrome`], `rat bench --json`) hand-roll their output. This
//! module is the other half of that bargain: a small recursive-descent
//! parser producing a [`Json`] value tree, so tests (and tools) can open an
//! emitted profile or bench report and check its shape instead of greping
//! strings. It accepts strict JSON (no comments, no trailing commas) and
//! keeps object keys in document order — good enough to validate our own
//! deterministic output, not a general-purpose library.

/// A parsed JSON value. Numbers are `f64` (the exporters emit nothing that
/// needs more); object keys keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number literal.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys are kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parse a complete JSON document. Errors carry the byte offset and a short
/// description.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{s}' at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "non-ascii \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogate pairs don't occur in our exporters'
                            // output; map lone surrogates to the replacement
                            // character instead of failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(
            parse("[1, 2]").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])
        );
        let obj = parse("{\"a\": 1, \"b\": [false]}").unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(obj.get("b").and_then(Json::as_array).map(Vec::len), Some(1));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_the_chrome_exporter() {
        use crate::telemetry::{ArgValue, Metric, Telemetry};
        let t = Telemetry::new();
        t.enable();
        {
            let _a = t.span("run");
            let _b = t.span_args("job", vec![("job", ArgValue::U64(7))]);
        }
        t.add(Metric::EngineJobs, 1);
        let json = t.drain().to_chrome_json();
        let doc = parse(&json).expect("exporter output parses");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            doc.get("metrics").and_then(|m| m.get("engine.jobs")),
            Some(&Json::Num(1.0))
        );
        for e in events {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        }
    }

    #[test]
    fn unescapes_unicode_and_utf8_passthrough() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }
}
