//! Design-space exploration: RAT "applied iteratively", automated.
//!
//! §3 of the paper: "RAT is applied iteratively during the design process
//! until a suitable version of the algorithm is formulated or all reasonable
//! permutations are exhausted without a satisfactory solution." This module
//! enumerates those permutations — clock assumptions, parallelism levels,
//! buffering disciplines — runs the throughput gate over the cartesian
//! product, and reports which corners pass, which is cheapest, and whether
//! the space is exhausted (the paper's "without a satisfactory solution"
//! outcome, which is itself an answer worth having before RTL).

use crate::error::RatError;
use crate::params::{Buffering, RatInput};
use crate::quantity::Freq;
use crate::report::Report;
use crate::solve::{self, batch::BatchPoints};
use crate::sweep::SweepParam;
use crate::table::TextTable;
use crate::worksheet::Worksheet;
use serde::{Deserialize, Serialize};

/// One corner's coordinates on the exploration axes — just the raw values,
/// with no cloned input and no formatted display name attached. The name is
/// built on demand by [`Corner::display_name`], so enumerating and gating a
/// large space never pays for string formatting on corners nobody will see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Clock frequency at this corner (Hz).
    pub fclock_hz: f64,
    /// `throughput_proc` at this corner (ops/cycle).
    pub throughput_proc: f64,
    /// Buffering discipline at this corner.
    pub buffering: Buffering,
}

impl Corner {
    /// Overwrite `input`'s axis fields with this corner's values, leaving
    /// everything else (including the name) untouched.
    pub fn apply_into(&self, input: &mut RatInput) {
        input.comp.fclock = Freq::from_hz(self.fclock_hz);
        input.comp.throughput_proc = self.throughput_proc;
        input.buffering = self.buffering;
    }

    /// The corner's display name, derived from the base design's name.
    pub fn display_name(&self, base: &str) -> String {
        format!(
            "{} [{:.0} MHz, {} ops/cyc, {:?}]",
            base,
            self.fclock_hz / 1e6,
            self.throughput_proc,
            self.buffering
        )
    }
}

/// The axes of a design space around a base worksheet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// The base design; axis values overwrite its corresponding fields.
    pub base: RatInput,
    /// Candidate clock frequencies (Hz). Empty = keep the base clock.
    pub fclocks: Vec<f64>,
    /// Candidate `throughput_proc` values (ops/cycle), typically one per
    /// parallelism level under consideration. Empty = keep the base value.
    pub throughput_procs: Vec<f64>,
    /// Candidate buffering disciplines. Empty = keep the base discipline.
    pub bufferings: Vec<Buffering>,
}

impl DesignSpace {
    /// A space that only varies the clock — the paper's own exploration shape.
    pub fn clocks(base: RatInput, fclocks: Vec<f64>) -> Self {
        Self {
            base,
            fclocks,
            throughput_procs: Vec::new(),
            bufferings: Vec::new(),
        }
    }

    /// Number of corners the space contains.
    pub fn size(&self) -> usize {
        self.fclocks.len().max(1)
            * self.throughput_procs.len().max(1)
            * self.bufferings.len().max(1)
    }

    /// Enumerate every corner's raw coordinates, in deterministic axis order
    /// (clock outermost, buffering innermost). This is the cheap enumeration:
    /// no input clones, no name formatting — a corner is three scalars.
    pub fn corner_coords(&self) -> Vec<Corner> {
        let fclocks: Vec<f64> = if self.fclocks.is_empty() {
            vec![self.base.comp.fclock.hz()]
        } else {
            self.fclocks.clone()
        };
        let tps: Vec<f64> = if self.throughput_procs.is_empty() {
            vec![self.base.comp.throughput_proc]
        } else {
            self.throughput_procs.clone()
        };
        let bufs: Vec<Buffering> = if self.bufferings.is_empty() {
            vec![self.base.buffering]
        } else {
            self.bufferings.clone()
        };
        let mut out = Vec::with_capacity(self.size());
        for &f in &fclocks {
            for &tp in &tps {
                for &b in &bufs {
                    out.push(Corner {
                        fclock_hz: f,
                        throughput_proc: tp,
                        buffering: b,
                    });
                }
            }
        }
        out
    }

    /// Enumerate every corner as a concrete, named worksheet input. This is
    /// the eager (clone + format per corner) view; hot paths should iterate
    /// [`DesignSpace::corner_coords`] instead and only materialize names for
    /// corners that end up in a report.
    pub fn corners(&self) -> Vec<RatInput> {
        self.corner_coords()
            .into_iter()
            .map(|corner| {
                let mut c = self.base.clone();
                corner.apply_into(&mut c);
                c.name = corner.display_name(&self.base.name);
                c
            })
            .collect()
    }
}

/// Outcome of exploring a design space against a speedup requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exploration {
    /// The speedup requirement applied.
    pub min_speedup: f64,
    /// Corners that met the requirement, ranked best first.
    pub passing: Vec<Report>,
    /// Number of corners that failed.
    pub failing: usize,
    /// The *cheapest* passing corner: lowest `throughput_proc` (parallelism is
    /// the expensive axis), ties broken by lowest clock (timing closure is the
    /// risky axis). `None` when the space is exhausted.
    pub cheapest: Option<Report>,
}

impl Exploration {
    /// Whether any corner satisfied the requirement.
    pub fn satisfiable(&self) -> bool {
        !self.passing.is_empty()
    }

    /// Render a summary.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title(format!(
                "Design-space exploration ({} passing, {} failing, target {:.1}x)",
                self.passing.len(),
                self.failing,
                self.min_speedup
            ))
            .header(["Corner", "Speedup"]);
        for r in self.passing.iter().take(10) {
            t.row([r.input.name.clone(), format!("{:.2}", r.speedup)]);
        }
        let mut s = t.render();
        match &self.cheapest {
            Some(c) => s.push_str(&format!(
                "cheapest passing corner: {} ({:.2}x)\n",
                c.input.name, c.speedup
            )),
            None => s.push_str(
                "space exhausted without a satisfactory solution — redesign or abandon\n",
            ),
        }
        s
    }
}

/// Explore `space` against `min_speedup`.
///
/// Runs in two phases: the whole space is first gated through the batched
/// SoA kernel — corners partition by buffering discipline (a base-level
/// property of a batch), and each partition is one
/// [`solve::batch::speedup_batch_indexed`] call with `f_clock` and
/// `throughput_proc` columns — and only corners that pass the gate get a
/// full named [`Report`]. The batch kernel is bit-identical to the scalar
/// [`solve::speedup_only`] gate it replaced, so the partition is exactly
/// what the per-corner version computed; on an invalid corner, the
/// lowest-indexed corner in enumeration order wins error reporting, as
/// before.
pub fn explore(space: &DesignSpace, min_speedup: f64) -> Result<Exploration, RatError> {
    let _span = crate::telemetry::span("explore");
    if !(min_speedup.is_finite() && min_speedup > 0.0) {
        return Err(RatError::param(format!(
            "min_speedup must be positive, got {min_speedup}"
        )));
    }
    let corners = space.corner_coords();
    let mut speedups = vec![0.0_f64; corners.len()];
    let mut first_err: Option<(usize, RatError)> = None;
    for buffering in [Buffering::Single, Buffering::Double] {
        let idx: Vec<usize> = (0..corners.len())
            .filter(|&i| corners[i].buffering == buffering)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let base = space.base.with_buffering(buffering);
        let mut batch = BatchPoints::new(&base, idx.len());
        batch.push_column(
            SweepParam::Fclock,
            idx.iter()
                .map(|&i| corners[i].fclock_hz)
                .collect::<Vec<f64>>(),
        );
        batch.push_column(
            SweepParam::ThroughputProc,
            idx.iter()
                .map(|&i| corners[i].throughput_proc)
                .collect::<Vec<f64>>(),
        );
        match solve::batch::speedup_batch_indexed(&batch) {
            Ok(s) => {
                for (k, &i) in idx.iter().enumerate() {
                    speedups[i] = s[k];
                }
            }
            // `idx` ascends, so the kernel's lowest in-partition failure maps
            // to the partition's lowest corner; the min across partitions is
            // the globally lowest failing corner.
            Err((k, e)) => {
                let global = idx[k];
                if first_err.as_ref().is_none_or(|(j, _)| global < *j) {
                    first_err = Some((global, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    let mut scratch = space.base.clone();
    let mut passing = Vec::new();
    let mut failing = 0usize;
    for (corner, &speedup) in corners.iter().zip(&speedups) {
        if speedup >= min_speedup {
            scratch.copy_params_from(&space.base);
            corner.apply_into(&mut scratch);
            let mut named = scratch.clone();
            named.name = corner.display_name(&space.base.name);
            passing.push(Worksheet::new(named).analyze()?);
        } else {
            failing += 1;
        }
    }
    passing.sort_by(|a, b| b.speedup.total_cmp(&a.speedup));
    let cheapest = passing
        .iter()
        .min_by(|a, b| {
            (a.input.comp.throughput_proc, a.input.comp.fclock)
                .partial_cmp(&(b.input.comp.throughput_proc, b.input.comp.fclock))
                .expect("finite by validation")
        })
        .cloned();
    Ok(Exploration {
        min_speedup,
        passing,
        failing,
        cheapest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;

    fn space() -> DesignSpace {
        DesignSpace {
            base: pdf1d_example(),
            fclocks: vec![75.0e6, 100.0e6, 150.0e6],
            throughput_procs: vec![10.0, 20.0, 24.0],
            bufferings: vec![Buffering::Single, Buffering::Double],
        }
    }

    #[test]
    fn corner_count_is_cartesian() {
        assert_eq!(space().size(), 18);
        assert_eq!(space().corners().len(), 18);
    }

    #[test]
    fn empty_axes_keep_base_values() {
        let s = DesignSpace::clocks(pdf1d_example(), vec![100.0e6]);
        let corners = s.corners();
        assert_eq!(corners.len(), 1);
        assert_eq!(corners[0].comp.throughput_proc, 20.0);
        assert_eq!(corners[0].comp.fclock, Freq::from_hz(100.0e6));
    }

    #[test]
    fn exploration_partitions_the_space() {
        let e = explore(&space(), 10.0).unwrap();
        assert_eq!(e.passing.len() + e.failing, 18);
        assert!(e.satisfiable());
        // Every passing corner genuinely meets the bar; ranking is descending.
        for r in &e.passing {
            assert!(r.speedup >= 10.0);
        }
        for w in e.passing.windows(2) {
            assert!(w[0].speedup >= w[1].speedup);
        }
    }

    #[test]
    fn cheapest_prefers_less_parallelism_then_lower_clock() {
        let e = explore(&space(), 10.0).unwrap();
        let c = e.cheapest.unwrap();
        // 20 ops/cyc @150 MHz SB passes (10.6x); DB @150 with 20 passes too;
        // 10 ops/cyc corners: SB 150 MHz gives ~5.5x (fail), DB 150 gives
        // 0.578/(400*2.62e-4) = 5.5 (fail). So cheapest is 20 ops/cyc, and
        // among those the lowest passing clock.
        assert_eq!(c.input.comp.throughput_proc, 20.0);
        assert!(c.input.comp.fclock <= Freq::from_mhz(150.0));
        assert!(c.speedup >= 10.0);
    }

    #[test]
    fn unsatisfiable_space_reports_exhaustion() {
        let e = explore(&space(), 1000.0).unwrap();
        assert!(!e.satisfiable());
        assert_eq!(e.failing, 18);
        assert!(e.cheapest.is_none());
        assert!(e.render().contains("exhausted"));
    }

    #[test]
    fn corner_names_identify_the_configuration() {
        let corners = space().corners();
        assert!(corners[0].name.contains("MHz"));
        assert!(corners[0].name.contains("ops/cyc"));
    }

    #[test]
    fn lazy_coords_match_the_eager_corner_view() {
        let s = space();
        let coords = s.corner_coords();
        let eager = s.corners();
        assert_eq!(coords.len(), eager.len());
        for (corner, input) in coords.iter().zip(&eager) {
            assert_eq!(input.comp.fclock, Freq::from_hz(corner.fclock_hz));
            assert_eq!(input.comp.throughput_proc, corner.throughput_proc);
            assert_eq!(input.buffering, corner.buffering);
            assert_eq!(input.name, corner.display_name(&s.base.name));
        }
    }

    #[test]
    fn two_phase_explore_reports_the_same_named_corners() {
        // Every passing report must carry exactly the name the eager
        // enumeration would have given that corner, and its speedup must
        // match a full analysis of the same input.
        let s = space();
        let eager_names: Vec<String> = s.corners().into_iter().map(|c| c.name).collect();
        let e = explore(&s, 10.0).unwrap();
        for r in &e.passing {
            assert!(
                eager_names.contains(&r.input.name),
                "unknown corner name {:?}",
                r.input.name
            );
            let full = Worksheet::new(r.input.clone()).analyze().unwrap();
            assert_eq!(full.speedup, r.speedup);
        }
    }

    #[test]
    fn bad_requirement_rejected() {
        assert!(explore(&space(), 0.0).is_err());
        assert!(explore(&space(), f64::NAN).is_err());
    }
}
