//! Side-by-side comparison of candidate designs.
//!
//! §5.2 of the paper motivates this directly: three published FPGA molecular-
//! dynamics designs reported speedups of **0.29x, 2x, and 46x** — "various
//! algorithm optimizations, precision choices, and FPGA platform selections".
//! RAT "can offer insight about a particular design, but it cannot guarantee
//! that a better solution does not exist"; what it *can* do is rank the
//! candidate designs you have thought of, before any is built. This module
//! runs the worksheet over a slate of candidates and ranks them.

use crate::error::RatError;
use crate::params::RatInput;
use crate::report::Report;
use crate::table::{pct, sci, TextTable};
use crate::worksheet::Worksheet;
use serde::{Deserialize, Serialize};

/// A ranked comparison of candidate designs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignComparison {
    /// Reports ranked by predicted speedup, best first.
    pub ranked: Vec<Report>,
}

impl DesignComparison {
    /// Analyze and rank a slate of candidate designs. Errors if any input is
    /// invalid or the slate is empty.
    pub fn compare(designs: &[RatInput]) -> Result<Self, RatError> {
        if designs.is_empty() {
            return Err(RatError::param(
                "design comparison needs at least one candidate",
            ));
        }
        let mut ranked = designs
            .iter()
            .map(|d| Worksheet::new(d.clone()).analyze())
            .collect::<Result<Vec<_>, _>>()?;
        ranked.sort_by(|a, b| b.speedup.total_cmp(&a.speedup));
        Ok(Self { ranked })
    }

    /// The winning design's report.
    pub fn best(&self) -> &Report {
        &self.ranked[0]
    }

    /// Spread between best and worst predicted speedups — the §5.2 point that
    /// design choice swings results by orders of magnitude.
    pub fn spread(&self) -> f64 {
        let worst = self.ranked.last().expect("non-empty").speedup;
        self.best().speedup / worst
    }

    /// Render the ranking.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title("Candidate design comparison (ranked by predicted speedup)")
            .header([
                "Design",
                "t_comm",
                "t_comp",
                "t_RC",
                "util_comm",
                "Speedup",
                "Bound",
            ]);
        for r in &self.ranked {
            t.row([
                r.input.name.clone(),
                sci(r.throughput.t_comm.seconds()),
                sci(r.throughput.t_comp.seconds()),
                sci(r.throughput.t_rc.seconds()),
                pct(r.throughput.util_comm),
                format!("{:.2}", r.speedup),
                if r.throughput.comm_bound() {
                    "comm"
                } else {
                    "comp"
                }
                .to_string(),
            ]);
        }
        format!(
            "{}speedup spread across candidates: {:.1}x\n",
            t.render(),
            self.spread()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;

    fn slate() -> Vec<RatInput> {
        let a = pdf1d_example(); // 10.6x
        let mut b = pdf1d_example().with_fclock(crate::quantity::Freq::from_mhz(75.0)); // 5.4x
        b.name = "1-D PDF @75".into();
        let mut c = pdf1d_example(); // crippled comm: comm-bound
        c.name = "1-D PDF chatty".into();
        c.dataset.elements_out = 65_536;
        vec![b, a, c]
    }

    #[test]
    fn ranking_is_by_speedup_descending() {
        let cmp = DesignComparison::compare(&slate()).unwrap();
        assert_eq!(cmp.best().input.name, "1-D PDF");
        for w in cmp.ranked.windows(2) {
            assert!(w[0].speedup >= w[1].speedup);
        }
    }

    #[test]
    fn spread_reflects_best_over_worst() {
        let cmp = DesignComparison::compare(&slate()).unwrap();
        let worst = cmp.ranked.last().unwrap().speedup;
        assert!((cmp.spread() - cmp.best().speedup / worst).abs() < 1e-12);
        assert!(cmp.spread() > 2.0);
    }

    #[test]
    fn render_lists_all_candidates_with_bound() {
        let cmp = DesignComparison::compare(&slate()).unwrap();
        let s = cmp.render();
        assert!(s.contains("1-D PDF @75"));
        assert!(s.contains("chatty"));
        assert!(s.contains("comm"), "the chatty variant is comm-bound:\n{s}");
        assert!(s.contains("spread"));
    }

    #[test]
    fn empty_slate_rejected() {
        assert!(DesignComparison::compare(&[]).is_err());
    }

    #[test]
    fn invalid_candidate_propagates() {
        let mut bad = pdf1d_example();
        bad.comp.fclock = crate::quantity::Freq::from_hz(-1.0);
        assert!(DesignComparison::compare(&[bad]).is_err());
    }
}
