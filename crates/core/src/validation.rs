//! Prediction-vs-measurement validation.
//!
//! RAT's §4.3 and §5 tables all have the same final act: lay the worksheet's
//! predictions beside measured values and judge the miss. This module is that
//! act as an API — feed it a [`ThroughputPrediction`] and the measurements
//! (from real hardware, or from the `fpga-sim` substitute), get back graded
//! per-metric comparisons. Grades follow the paper's own framing: the
//! designer "must know what order of magnitude speedup ... will be
//! encountered", so an order-of-magnitude hit with a honest error breakdown
//! beats false precision.

use crate::table::{sci, TextTable};
use crate::throughput::ThroughputPrediction;
use serde::{Deserialize, Serialize};

/// How close a prediction landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Grade {
    /// Within 10% — as good as pre-design analysis gets.
    Accurate,
    /// Within 50% — the right planning answer, wrong decimals.
    Good,
    /// Within 10x — the order of magnitude survived.
    OrderOfMagnitude,
    /// More than 10x off — the model missed something structural.
    Poor,
}

impl Grade {
    /// Grade a predicted/measured pair.
    pub fn of(predicted: f64, measured: f64) -> Grade {
        if measured <= 0.0 || predicted <= 0.0 {
            return Grade::Poor;
        }
        let ratio = (predicted / measured).max(measured / predicted);
        if ratio <= 1.10 {
            Grade::Accurate
        } else if ratio <= 1.50 {
            Grade::Good
        } else if ratio <= 10.0 {
            Grade::OrderOfMagnitude
        } else {
            Grade::Poor
        }
    }

    fn label(self) -> &'static str {
        match self {
            Grade::Accurate => "accurate (<=10%)",
            Grade::Good => "good (<=50%)",
            Grade::OrderOfMagnitude => "order-of-magnitude",
            Grade::Poor => "poor (>10x)",
        }
    }
}

/// Measured performance, from hardware or simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPerformance {
    /// Measured per-iteration communication time (s).
    pub t_comm: f64,
    /// Measured per-iteration computation time (s).
    pub t_comp: f64,
    /// Measured total RC execution time (s).
    pub t_rc: f64,
}

/// One metric's comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Metric name.
    pub metric: String,
    /// The worksheet's prediction.
    pub predicted: f64,
    /// The measurement.
    pub measured: f64,
    /// `measured / predicted` — above 1 means the prediction was optimistic
    /// for a time metric.
    pub ratio: f64,
    /// Accuracy grade.
    pub grade: Grade,
}

/// A full prediction-vs-measurement comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Per-metric comparisons: t_comm, t_comp, t_RC, speedup.
    pub rows: Vec<ValidationRow>,
}

impl ValidationReport {
    /// Compare a prediction against measurements, with `t_soft` supplying the
    /// measured speedup.
    pub fn compare(
        prediction: &ThroughputPrediction,
        measured: &MeasuredPerformance,
        t_soft: f64,
    ) -> Self {
        let row = |metric: &str, p: f64, m: f64| ValidationRow {
            metric: metric.to_string(),
            predicted: p,
            measured: m,
            ratio: m / p,
            grade: Grade::of(p, m),
        };
        let rows = vec![
            row("t_comm", prediction.t_comm.seconds(), measured.t_comm),
            row("t_comp", prediction.t_comp.seconds(), measured.t_comp),
            row("t_RC", prediction.t_rc.seconds(), measured.t_rc),
            row("speedup", prediction.speedup, t_soft / measured.t_rc),
        ];
        Self { rows }
    }

    /// The worst grade across metrics — the headline verdict.
    pub fn overall(&self) -> Grade {
        self.rows
            .iter()
            .map(|r| r.grade)
            .max_by_key(|g| match g {
                Grade::Accurate => 0,
                Grade::Good => 1,
                Grade::OrderOfMagnitude => 2,
                Grade::Poor => 3,
            })
            .unwrap_or(Grade::Accurate)
    }

    /// The metric with the largest miss — where to aim the next
    /// microbenchmark or model refinement.
    pub fn dominant_error(&self) -> Option<&ValidationRow> {
        self.rows
            .iter()
            .filter(|r| r.metric != "t_RC" && r.metric != "speedup") // composites
            .max_by(|a, b| {
                let ra = a.ratio.max(1.0 / a.ratio);
                let rb = b.ratio.max(1.0 / b.ratio);
                ra.total_cmp(&rb)
            })
    }

    /// Render the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new().title("Prediction vs measurement").header([
            "Metric",
            "Predicted",
            "Measured",
            "Meas/Pred",
            "Grade",
        ]);
        for r in &self.rows {
            t.row([
                r.metric.clone(),
                sci(r.predicted),
                sci(r.measured),
                format!("{:.2}x", r.ratio),
                r.grade.label().to_string(),
            ]);
        }
        let mut s = t.render();
        if let Some(d) = self.dominant_error() {
            s.push_str(&format!(
                "dominant error: {} ({:.2}x) — refine that estimate first\n",
                d.metric, d.ratio
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;

    /// The paper's Table 3 as a validation report.
    fn table3_report() -> ValidationReport {
        let prediction = ThroughputPrediction::analyze(&pdf1d_example()).unwrap();
        let measured = MeasuredPerformance {
            t_comm: 2.50e-5,
            t_comp: 1.39e-4,
            t_rc: 7.45e-2,
        };
        ValidationReport::compare(&prediction, &measured, 0.578)
    }

    #[test]
    fn grades_follow_thresholds() {
        assert_eq!(Grade::of(1.0, 1.05), Grade::Accurate);
        assert_eq!(Grade::of(1.0, 0.95), Grade::Accurate);
        assert_eq!(Grade::of(1.0, 1.4), Grade::Good);
        assert_eq!(Grade::of(1.0, 4.5), Grade::OrderOfMagnitude);
        assert_eq!(Grade::of(1.0, 20.0), Grade::Poor);
        assert_eq!(Grade::of(0.0, 1.0), Grade::Poor);
    }

    #[test]
    fn table3_grading_matches_the_papers_story() {
        let r = table3_report();
        let by_name = |n: &str| r.rows.iter().find(|row| row.metric == n).unwrap();
        assert_eq!(by_name("t_comp").grade, Grade::Accurate);
        assert_eq!(by_name("t_comm").grade, Grade::OrderOfMagnitude);
        assert_eq!(by_name("speedup").grade, Grade::Good);
        assert_eq!(r.overall(), Grade::OrderOfMagnitude);
    }

    #[test]
    fn dominant_error_is_communication() {
        let r = table3_report();
        let d = r.dominant_error().unwrap();
        assert_eq!(d.metric, "t_comm");
        assert!((d.ratio - 4.5).abs() < 0.1, "comm miss ratio {}", d.ratio);
    }

    #[test]
    fn perfect_measurement_grades_accurate() {
        let prediction = ThroughputPrediction::analyze(&pdf1d_example()).unwrap();
        let measured = MeasuredPerformance {
            t_comm: prediction.t_comm.seconds(),
            t_comp: prediction.t_comp.seconds(),
            t_rc: prediction.t_rc.seconds(),
        };
        let r = ValidationReport::compare(&prediction, &measured, 0.578);
        assert_eq!(r.overall(), Grade::Accurate);
        for row in &r.rows {
            assert!((row.ratio - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn render_includes_grades_and_dominant_error() {
        let s = table3_report().render();
        assert!(s.contains("order-of-magnitude"));
        assert!(s.contains("dominant error: t_comm"));
    }
}
