//! The RAT numerical-precision test (§3.2).
//!
//! With FPGAs, "increased precision dictates higher resource utilization", so
//! the goal is the *minimum* precision meeting the application's tolerance.
//! Formal precision analysis is outside RAT's scope (the paper defers to the
//! literature); what RAT provides is "a quick and consistent procedure for
//! evaluating these design choices". This module is that procedure: evaluate a
//! slate of candidate formats against a workload, report each one's error and
//! multiplier cost, and pick the cheapest acceptable one — automating the
//! paper's 18-bit-fixed-point decision for the PDF kernel.

use crate::resources::estimate::dsps_for_multiplier;
use crate::table::TextTable;
use fixedpoint::{ErrorStats, MiniFloat, QFormat};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A numeric format candidate: fixed point or reduced-precision float.
///
/// The paper's §4.2 comparison spans both kinds: "18-bit and 32-bit fixed
/// point along with 32-bit floating point were considered".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NumericFormat {
    /// A Q-format fixed-point representation.
    Fixed(QFormat),
    /// A custom floating-point representation.
    Float(MiniFloat),
}

impl NumericFormat {
    /// Total storage width in bits.
    pub fn total_bits(&self) -> u32 {
        match self {
            NumericFormat::Fixed(q) => q.total_bits(),
            NumericFormat::Float(f) => f.total_bits(),
        }
    }

    /// Dedicated multipliers one multiply needs on a device with
    /// `native_width`-bit multipliers. Fixed point multiplies the full word;
    /// floating point multiplies the significand (mantissa plus hidden bit),
    /// with the exponent path in logic — the paper's note that
    /// "floating-point units use hardware multipliers for fast execution".
    pub fn dsps_per_mult(&self, native_width: u32) -> u32 {
        match self {
            NumericFormat::Fixed(q) => dsps_for_multiplier(q.total_bits(), native_width),
            NumericFormat::Float(f) => dsps_for_multiplier(f.mant_bits() + 1, native_width),
        }
    }
}

impl fmt::Display for NumericFormat {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericFormat::Fixed(q) => write!(out, "{q}"),
            NumericFormat::Float(f) => write!(out, "{f}"),
        }
    }
}

/// One candidate format's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateResult {
    /// The format evaluated.
    pub format: QFormat,
    /// Error of the quantized workload against the f64 reference.
    pub stats: ErrorStats,
    /// Dedicated multipliers per multiply at this width (on the given device
    /// multiplier width).
    pub dsps_per_mult: u32,
    /// Whether the error was within tolerance.
    pub acceptable: bool,
}

/// Outcome of the precision test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionReport {
    /// Relative-error tolerance applied.
    pub tolerance: f64,
    /// Every candidate, in the order given.
    pub candidates: Vec<CandidateResult>,
    /// Index into `candidates` of the chosen format (narrowest acceptable,
    /// ties broken by fewer DSPs per multiply), or `None` if nothing passed.
    pub chosen: Option<usize>,
}

impl PrecisionReport {
    /// The chosen candidate, if any format met the tolerance.
    pub fn chosen_candidate(&self) -> Option<&CandidateResult> {
        self.chosen.map(|i| &self.candidates[i])
    }

    /// Render as a comparison table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title(format!(
                "Precision test (max relative error <= {})",
                self.tolerance
            ))
            .header(["Format", "Bits", "Max rel err", "DSPs/mult", "Acceptable"]);
        for (i, c) in self.candidates.iter().enumerate() {
            let mark = if Some(i) == self.chosen {
                " <= chosen"
            } else {
                ""
            };
            t.row([
                c.format.to_string(),
                c.format.total_bits().to_string(),
                format!("{:.3e}", c.stats.max_rel_error()),
                c.dsps_per_mult.to_string(),
                format!("{}{}", if c.acceptable { "yes" } else { "no" }, mark),
            ]);
        }
        t.render()
    }
}

/// Run the precision test: evaluate each candidate format with `evaluate`
/// (which runs the application workload quantized to that format and returns
/// error statistics vs the f64 reference) and choose the narrowest acceptable
/// format under `tolerance` (maximum relative error).
///
/// `native_mult_width` is the device's dedicated multiplier width (18 for the
/// paper's devices), used to cost each format.
pub fn precision_test<F>(
    candidates: &[QFormat],
    tolerance: f64,
    native_mult_width: u32,
    mut evaluate: F,
) -> PrecisionReport
where
    F: FnMut(QFormat) -> ErrorStats,
{
    assert!(
        tolerance >= 0.0 && tolerance.is_finite(),
        "tolerance must be non-negative"
    );
    let results: Vec<CandidateResult> = candidates
        .iter()
        .map(|&format| {
            let stats = evaluate(format);
            CandidateResult {
                acceptable: stats.within_rel_tolerance(tolerance),
                dsps_per_mult: dsps_for_multiplier(format.total_bits(), native_mult_width),
                format,
                stats,
            }
        })
        .collect();
    let chosen = results
        .iter()
        .enumerate()
        .filter(|(_, c)| c.acceptable)
        .min_by_key(|(_, c)| (c.format.total_bits(), c.dsps_per_mult))
        .map(|(i, _)| i);
    PrecisionReport {
        tolerance,
        candidates: results,
        chosen,
    }
}

/// One mixed-format candidate's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedCandidateResult {
    /// The format evaluated.
    pub format: NumericFormat,
    /// Error of the quantized workload against the f64 reference.
    pub stats: ErrorStats,
    /// Dedicated multipliers per multiply at this format.
    pub dsps_per_mult: u32,
    /// Whether the error was within tolerance.
    pub acceptable: bool,
}

/// Outcome of the mixed fixed/float precision comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedPrecisionReport {
    /// Relative-error tolerance applied.
    pub tolerance: f64,
    /// Every candidate, in the order given.
    pub candidates: Vec<MixedCandidateResult>,
    /// Index of the chosen format: the acceptable candidate with the fewest
    /// DSPs per multiply, ties broken by fewer total bits (the paper chose
    /// 18-bit fixed over 32-bit float for exactly the single-MAC reason).
    pub chosen: Option<usize>,
}

impl MixedPrecisionReport {
    /// The chosen candidate, if any format met the tolerance.
    pub fn chosen_candidate(&self) -> Option<&MixedCandidateResult> {
        self.chosen.map(|i| &self.candidates[i])
    }

    /// Render as a comparison table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title(format!(
                "Mixed precision comparison (max relative error <= {})",
                self.tolerance
            ))
            .header(["Format", "Bits", "Max rel err", "DSPs/mult", "Acceptable"]);
        for (i, c) in self.candidates.iter().enumerate() {
            let mark = if Some(i) == self.chosen {
                " <= chosen"
            } else {
                ""
            };
            t.row([
                c.format.to_string(),
                c.format.total_bits().to_string(),
                format!("{:.3e}", c.stats.max_rel_error()),
                c.dsps_per_mult.to_string(),
                format!("{}{}", if c.acceptable { "yes" } else { "no" }, mark),
            ]);
        }
        t.render()
    }
}

/// The paper's full §4.2 comparison: evaluate fixed- and floating-point
/// candidates together and choose the cheapest acceptable one, costed in
/// dedicated multipliers first (the scarce resource), width second.
pub fn precision_test_mixed<F>(
    candidates: &[NumericFormat],
    tolerance: f64,
    native_mult_width: u32,
    mut evaluate: F,
) -> MixedPrecisionReport
where
    F: FnMut(NumericFormat) -> ErrorStats,
{
    assert!(
        tolerance >= 0.0 && tolerance.is_finite(),
        "tolerance must be non-negative"
    );
    let results: Vec<MixedCandidateResult> = candidates
        .iter()
        .map(|&format| {
            let stats = evaluate(format);
            MixedCandidateResult {
                acceptable: stats.within_rel_tolerance(tolerance),
                dsps_per_mult: format.dsps_per_mult(native_mult_width),
                format,
                stats,
            }
        })
        .collect();
    let chosen = results
        .iter()
        .enumerate()
        .filter(|(_, c)| c.acceptable)
        .min_by_key(|(_, c)| (c.dsps_per_mult, c.format.total_bits()))
        .map(|(i, _)| i);
    MixedPrecisionReport {
        tolerance,
        candidates: results,
        chosen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixedpoint::{Fx, Overflow, Rounding};

    /// Quantization-only workload over a fixed dataset in [-1, 1).
    fn eval(fmt: QFormat) -> ErrorStats {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 / 500.0) * 1.9 - 0.95).collect();
        let q: Vec<f64> = data
            .iter()
            .map(|&v| Fx::from_f64(v, fmt, Rounding::Nearest, Overflow::Saturate).to_f64())
            .collect();
        ErrorStats::between(&data, &q)
    }

    fn candidates() -> Vec<QFormat> {
        vec![
            QFormat::signed(0, 11).unwrap(), // 12-bit
            QFormat::signed(0, 17).unwrap(), // 18-bit (the paper's choice)
            QFormat::signed(0, 31).unwrap(), // 32-bit fixed
        ]
    }

    // The workload's smallest nonzero sample is ~0.0038, so the max relative
    // error is ~(ulp/2)/0.0038: ~6.4e-2 at 12 bits, ~1.0e-3 at 18 bits,
    // ~6e-8 at 32 bits.

    #[test]
    fn chooses_narrowest_acceptable() {
        // With a loose 10% tolerance, even 12 bits pass: pick 12.
        let r = precision_test(&candidates(), 0.1, 18, eval);
        assert_eq!(r.chosen_candidate().unwrap().format.total_bits(), 12);
    }

    #[test]
    fn paper_scenario_18_bits_over_32() {
        // Tolerance tight enough to exclude 12-bit but passed by 18-bit:
        // the paper's reasoning that 18-bit suffices and 32-bit saves nothing.
        let r = precision_test(&candidates(), 0.01, 18, eval);
        let chosen = r.chosen_candidate().unwrap();
        assert_eq!(chosen.format.total_bits(), 18);
        assert_eq!(chosen.dsps_per_mult, 1);
        // 32-bit also passes but costs double the multipliers.
        assert!(r.candidates[2].acceptable);
        assert_eq!(r.candidates[2].dsps_per_mult, 2);
    }

    #[test]
    fn none_acceptable_reports_none() {
        let r = precision_test(&candidates(), 1e-15, 18, eval);
        assert!(r.chosen.is_none());
        assert!(r.chosen_candidate().is_none());
    }

    #[test]
    fn render_marks_choice() {
        let r = precision_test(&candidates(), 0.01, 18, eval);
        let s = r.render();
        assert!(
            s.contains("<= chosen"),
            "render should mark the chosen format:\n{s}"
        );
        assert!(s.contains("Q0.17"));
    }

    #[test]
    fn empty_candidates_yield_empty_report() {
        let r = precision_test(&[], 0.01, 18, eval);
        assert!(r.candidates.is_empty());
        assert!(r.chosen.is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_panics() {
        precision_test(&candidates(), -0.5, 18, eval);
    }

    /// Quantization-only mixed-format workload.
    fn eval_mixed(fmt: NumericFormat) -> ErrorStats {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 / 500.0) * 1.9 - 0.95).collect();
        let q: Vec<f64> = data
            .iter()
            .map(|&v| match fmt {
                NumericFormat::Fixed(qf) => {
                    Fx::from_f64(v, qf, Rounding::Nearest, Overflow::Saturate).to_f64()
                }
                NumericFormat::Float(mf) => mf.quantize(v),
            })
            .collect();
        ErrorStats::between(&data, &q)
    }

    fn mixed_candidates() -> Vec<NumericFormat> {
        vec![
            NumericFormat::Fixed(QFormat::signed(0, 17).unwrap()), // 18-bit fixed
            NumericFormat::Fixed(QFormat::signed(0, 31).unwrap()), // 32-bit fixed
            NumericFormat::Float(MiniFloat::binary32()),           // 32-bit float
        ]
    }

    #[test]
    fn paper_section42_three_way_comparison() {
        // At the paper's ~2% tolerance all three candidates pass; the choice
        // falls to the single-MAC 18-bit fixed format — the paper's decision.
        let r = precision_test_mixed(&mixed_candidates(), 0.02, 18, eval_mixed);
        let chosen = r.chosen_candidate().unwrap();
        assert!(matches!(chosen.format, NumericFormat::Fixed(q) if q.total_bits() == 18));
        assert_eq!(chosen.dsps_per_mult, 1);
        // Both 32-bit candidates pass but cost 2 multipliers.
        assert!(r.candidates[1].acceptable && r.candidates[1].dsps_per_mult == 2);
        assert!(r.candidates[2].acceptable && r.candidates[2].dsps_per_mult == 2);
    }

    #[test]
    fn float_wins_when_fixed_range_is_hostile() {
        // A wide-dynamic-range workload: values spanning 1e-4 to 1e4 (inside
        // binary16's normal range). The fixed format clips the top decade and
        // crushes the bottom one; float keeps relative error uniform.
        let eval = |fmt: NumericFormat| {
            let data: Vec<f64> = (0..49)
                .map(|i| (10.0f64).powf(i as f64 / 6.0 - 4.0))
                .collect();
            let q: Vec<f64> = data
                .iter()
                .map(|&v| match fmt {
                    NumericFormat::Fixed(qf) => {
                        Fx::from_f64(v, qf, Rounding::Nearest, Overflow::Saturate).to_f64()
                    }
                    NumericFormat::Float(mf) => mf.quantize(v),
                })
                .collect();
            ErrorStats::between(&data, &q)
        };
        let candidates = vec![
            NumericFormat::Fixed(QFormat::signed(10, 7).unwrap()),
            NumericFormat::Float(MiniFloat::binary16()),
        ];
        let r = precision_test_mixed(&candidates, 0.01, 18, eval);
        let chosen = r.chosen_candidate().unwrap();
        assert!(
            matches!(chosen.format, NumericFormat::Float(_)),
            "{}",
            r.render()
        );
    }

    #[test]
    fn mixed_render_and_display() {
        let r = precision_test_mixed(&mixed_candidates(), 0.02, 18, eval_mixed);
        let s = r.render();
        assert!(s.contains("Q0.17"));
        assert!(s.contains("fp32(e8m23)"));
        assert!(s.contains("<= chosen"));
    }

    #[test]
    fn numeric_format_accessors() {
        let fx = NumericFormat::Fixed(QFormat::signed(0, 17).unwrap());
        let fl = NumericFormat::Float(MiniFloat::binary32());
        assert_eq!(fx.total_bits(), 18);
        assert_eq!(fl.total_bits(), 32);
        assert_eq!(fx.dsps_per_mult(18), 1);
        assert_eq!(fl.dsps_per_mult(18), 2); // 24-bit significand
    }
}
