//! Local sensitivity analysis of the speedup prediction.
//!
//! The paper's case studies show that RAT's accuracy hinges on a few inputs —
//! communication alphas for the PDF designs, `ops_per_element` for MD. A
//! sensitivity ranking tells the designer *which* estimates deserve the
//! microbenchmarking/measurement effort: a parameter with elasticity near 1
//! moves the prediction one-for-one; one near 0 can stay a guess.

use crate::engine::Engine;
use crate::error::RatError;
use crate::params::RatInput;
use crate::solve::batch::{speedup_batch, BatchPoints};
use crate::sweep::SweepParam;
use crate::table::TextTable;
use crate::throughput;
use serde::{Deserialize, Serialize};

/// Elasticity of speedup with respect to one parameter:
/// `(d speedup / speedup) / (d p / p)`, estimated by central finite difference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity {
    /// The parameter varied.
    pub param: SweepParam,
    /// Relative elasticity of speedup to this parameter at the input point.
    pub elasticity: f64,
}

/// Sensitivity of speedup to each of the scalar inputs, ranked by magnitude.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// Per-parameter elasticities, most influential first.
    pub entries: Vec<Sensitivity>,
}

/// Parameters included in a standard sensitivity scan. `AlphaBoth` is used in
/// place of the two individual alphas' joint effect; the individual alphas are
/// also scanned so asymmetric channels (like the PDF designs' read path) are
/// visible.
pub const SCANNED_PARAMS: [SweepParam; 6] = [
    SweepParam::Fclock,
    SweepParam::AlphaWrite,
    SweepParam::AlphaRead,
    SweepParam::AlphaBoth,
    SweepParam::ThroughputProc,
    SweepParam::OpsPerElement,
];

/// Compute the elasticity of speedup with respect to `param` at `input`,
/// using a central difference with relative step `h` (e.g. `1e-4`).
pub fn elasticity(input: &RatInput, param: SweepParam, h: f64) -> Result<f64, RatError> {
    input.validate()?;
    if !(h.is_finite() && h > 0.0 && h < 0.5) {
        return Err(RatError::param(format!(
            "step h must be in (0, 0.5), got {h}"
        )));
    }
    let p0 = param.read(input);
    // The up/down probe pair is a 2-point batch: same float chain as the old
    // per-point path (bit-identical), and the batch kernel's lowest-index
    // error contract preserves the up-before-down validation order.
    let mut points = BatchPoints::new(input, 2);
    points.push_column(param, vec![p0 * (1.0 + h), p0 * (1.0 - h)]);
    let probes = speedup_batch(&points)?;
    let s0 = throughput::speedup(input);
    let ds = probes[0] - probes[1];
    Ok((ds / s0) / (2.0 * h))
}

/// Scan all of [`SCANNED_PARAMS`] and rank by absolute elasticity.
pub fn analyze(input: &RatInput) -> Result<SensitivityReport, RatError> {
    analyze_with(&Engine::sequential(), input)
}

/// [`analyze`], with each parameter's central-difference probe run as an
/// independent job on `engine`. The rank sort is stable over the fixed scan
/// order, so ties break identically at every thread count.
pub fn analyze_with(engine: &Engine, input: &RatInput) -> Result<SensitivityReport, RatError> {
    let _span = crate::telemetry::span("sensitivity");
    let mut entries = engine.try_run(SCANNED_PARAMS.len(), |i| {
        let param = SCANNED_PARAMS[i];
        Ok(Sensitivity {
            param,
            elasticity: elasticity(input, param, 1e-4)?,
        })
    })?;
    entries.sort_by(|a: &Sensitivity, b: &Sensitivity| {
        b.elasticity.abs().total_cmp(&a.elasticity.abs())
    });
    Ok(SensitivityReport { entries })
}

impl SensitivityReport {
    /// The most influential parameter.
    pub fn dominant(&self) -> Option<&Sensitivity> {
        self.entries.first()
    }

    /// Render as a ranked table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title("Speedup sensitivity (elasticity d ln speedup / d ln p)")
            .header(["Parameter", "Elasticity"]);
        for e in &self.entries {
            t.row([e.param.label().to_string(), format!("{:+.3}", e.elasticity)]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{pdf1d_example, Buffering};

    #[test]
    fn compute_bound_design_is_clock_sensitive() {
        // 1-D PDF at 150 MHz is ~96% compute: elasticity to fclock ~ +0.96,
        // to ops/element ~ -0.96, to alphas ~ +0.04.
        let r = analyze(&pdf1d_example()).unwrap();
        let get = |p: SweepParam| r.entries.iter().find(|e| e.param == p).unwrap().elasticity;
        assert!((get(SweepParam::Fclock) - 0.96).abs() < 0.01);
        assert!((get(SweepParam::ThroughputProc) - 0.96).abs() < 0.01);
        assert!((get(SweepParam::OpsPerElement) + 0.96).abs() < 0.01);
        assert!(get(SweepParam::AlphaBoth) < 0.05);
        assert!(get(SweepParam::AlphaWrite) > get(SweepParam::AlphaRead));
    }

    #[test]
    fn elasticities_of_comm_and_comp_sum_to_one_in_sb() {
        // In SB, t_RC = Niter*(t_comm + t_comp): scaling both comm (via alpha)
        // and comp (via fclock) rates together scales speedup exactly 1:1.
        let r = analyze(&pdf1d_example()).unwrap();
        let get = |p: SweepParam| r.entries.iter().find(|e| e.param == p).unwrap().elasticity;
        let total = get(SweepParam::AlphaBoth) + get(SweepParam::Fclock);
        assert!((total - 1.0).abs() < 1e-3, "got {total}");
    }

    #[test]
    fn dominant_parameter_is_ranked_first() {
        let r = analyze(&pdf1d_example()).unwrap();
        let dom = r.dominant().unwrap();
        assert!(r
            .entries
            .iter()
            .all(|e| e.elasticity.abs() <= dom.elasticity.abs() + 1e-12));
    }

    #[test]
    fn double_buffered_compute_bound_ignores_alpha() {
        // In DB with compute dominant, small alpha changes don't move t_RC at all.
        let input = pdf1d_example().with_buffering(Buffering::Double);
        let e = elasticity(&input, SweepParam::AlphaBoth, 1e-4).unwrap();
        assert!(
            e.abs() < 1e-9,
            "alpha elasticity should vanish under DB, got {e}"
        );
        let ef = elasticity(&input, SweepParam::Fclock, 1e-4).unwrap();
        assert!(
            (ef - 1.0).abs() < 1e-6,
            "clock elasticity should be 1 under DB, got {ef}"
        );
    }

    #[test]
    fn bad_step_rejected() {
        assert!(elasticity(&pdf1d_example(), SweepParam::Fclock, 0.0).is_err());
        assert!(elasticity(&pdf1d_example(), SweepParam::Fclock, 0.9).is_err());
    }

    #[test]
    fn step_near_alpha_bound_errors_not_nans() {
        let mut input = pdf1d_example();
        input.comm.alpha_write = 1.0; // 1.0 * (1+h) exceeds the bound
        let err = elasticity(&input, SweepParam::AlphaWrite, 1e-4);
        assert!(err.is_err());
    }

    #[test]
    fn batched_probes_match_the_scalar_chain_bitwise() {
        let input = pdf1d_example();
        let h = 1e-4;
        for param in SCANNED_PARAMS {
            let p0 = param.read(&input);
            let up = param.apply(&input, p0 * (1.0 + h));
            let down = param.apply(&input, p0 * (1.0 - h));
            let s0 = throughput::speedup(&input);
            let expect = ((throughput::speedup(&up) - throughput::speedup(&down)) / s0) / (2.0 * h);
            let got = elasticity(&input, param, h).unwrap();
            assert_eq!(got.to_bits(), expect.to_bits(), "{param:?}");
        }
    }

    #[test]
    fn render_ranks_entries() {
        let r = analyze(&pdf1d_example()).unwrap();
        let s = r.render();
        assert!(s.contains("Elasticity"));
        assert_eq!(s.lines().count(), 3 + SCANNED_PARAMS.len());
    }
}
