//! Parameter sweeps over a RAT input.
//!
//! RAT is applied iteratively across candidate designs and platform
//! assumptions; the paper itself sweeps `f_clock` over 75/100/150 MHz because
//! "a priori estimation of the required clock frequency is very difficult".
//! [`sweep`] generalizes that to any single scalar parameter.

use crate::engine::{Engine, PointCost};
use crate::error::RatError;
use crate::params::RatInput;
use crate::quantity::Freq;
use crate::report::Report;
use crate::solve::batch::{solve_batch, BatchPoints};
use crate::table::{sci, TextTable};
use serde::{Deserialize, Serialize};

/// Which scalar input parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SweepParam {
    /// FPGA clock frequency (Hz).
    Fclock,
    /// Host→FPGA sustained fraction.
    AlphaWrite,
    /// FPGA→host sustained fraction.
    AlphaRead,
    /// Both alphas together, preserving their ratio: the swept value is the
    /// new `alpha_write`, and `alpha_read` scales by the same factor. This
    /// models improving the interconnect as a whole (its asymmetry is a
    /// property of the platform, not the knob).
    AlphaBoth,
    /// Operations per cycle.
    ThroughputProc,
    /// Operations per element.
    OpsPerElement,
    /// Elements per input block (values are rounded to integers).
    ElementsIn,
    /// Number of iterations (values are rounded to integers; the total
    /// dataset `elements_in * iterations` changes accordingly).
    Iterations,
}

impl SweepParam {
    /// Human-readable axis label.
    pub fn label(self) -> &'static str {
        match self {
            SweepParam::Fclock => "f_clock (Hz)",
            SweepParam::AlphaWrite => "alpha_write",
            SweepParam::AlphaRead => "alpha_read",
            SweepParam::AlphaBoth => "alpha (both)",
            SweepParam::ThroughputProc => "throughput_proc (ops/cycle)",
            SweepParam::OpsPerElement => "ops/element",
            SweepParam::ElementsIn => "elements_in",
            SweepParam::Iterations => "iterations",
        }
    }

    /// A copy of `input` with this parameter set to `value`.
    pub fn apply(self, input: &RatInput, value: f64) -> RatInput {
        let mut next = input.clone();
        self.apply_into(&mut next, value);
        next
    }

    /// Set this parameter to `value` in place — [`SweepParam::apply`] without
    /// the clone. Hot loops keep one scratch input per worker, restore it
    /// from the base point with [`RatInput::copy_params_from`], and mutate it
    /// here, so a sweep point or Monte-Carlo sample allocates nothing.
    ///
    /// `AlphaBoth` reads the *current* `alpha_write` as the scaling
    /// reference, exactly as chained `apply` calls would.
    pub fn apply_into(self, input: &mut RatInput, value: f64) {
        match self {
            SweepParam::Fclock => input.comp.fclock = Freq::from_hz(value),
            SweepParam::AlphaWrite => input.comm.alpha_write = value,
            SweepParam::AlphaRead => input.comm.alpha_read = value,
            SweepParam::AlphaBoth => {
                let factor = value / input.comm.alpha_write;
                input.comm.alpha_write = value;
                input.comm.alpha_read *= factor;
            }
            SweepParam::ThroughputProc => input.comp.throughput_proc = value,
            SweepParam::OpsPerElement => input.comp.ops_per_element = value,
            SweepParam::ElementsIn => input.dataset.elements_in = value.round().max(1.0) as u64,
            SweepParam::Iterations => input.software.iterations = value.round().max(1.0) as u64,
        }
    }

    /// Read this parameter's current value from `input`.
    pub fn read(self, input: &RatInput) -> f64 {
        match self {
            SweepParam::Fclock => input.comp.fclock.hz(),
            SweepParam::AlphaWrite => input.comm.alpha_write,
            SweepParam::AlphaRead => input.comm.alpha_read,
            SweepParam::AlphaBoth => input.comm.alpha_write,
            SweepParam::ThroughputProc => input.comp.throughput_proc,
            SweepParam::OpsPerElement => input.comp.ops_per_element,
            SweepParam::ElementsIn => input.dataset.elements_in as f64,
            SweepParam::Iterations => input.software.iterations as f64,
        }
    }
}

/// One sweep point: the parameter value and the full report at that value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value at this point.
    pub value: f64,
    /// The analysis at this value.
    pub report: Report,
}

/// A completed sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// The swept parameter.
    pub param: SweepParam,
    /// Points in the order requested.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// `(value, speedup)` series, ready for plotting.
    pub fn speedup_series(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.value, p.report.speedup))
            .collect()
    }

    /// The sweep point with the highest speedup, if the sweep is non-empty.
    pub fn best(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.report.speedup.total_cmp(&b.report.speedup))
    }

    /// The first point (in sweep order) whose speedup meets `target`, if any —
    /// the crossover the designer is usually hunting for.
    pub fn first_meeting(&self, target: f64) -> Option<&SweepPoint> {
        self.points.iter().find(|p| p.report.speedup >= target)
    }

    /// Render as a table of value vs t_comm/t_comp/t_RC/speedup.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title(format!("Sweep of {}", self.param.label()))
            .header([self.param.label(), "t_comm", "t_comp", "t_RC", "speedup"]);
        for p in &self.points {
            t.row([
                format!("{:.6}", p.value),
                sci(p.report.throughput.t_comm.seconds()),
                sci(p.report.throughput.t_comp.seconds()),
                sci(p.report.throughput.t_rc.seconds()),
                format!("{:.2}", p.report.speedup),
            ]);
        }
        t.render()
    }
}

/// Sweep `param` over `values`, producing one full report per value.
///
/// Values that make the input invalid (e.g. alpha > 1) are reported as errors
/// rather than skipped, so a scripted exploration can't silently drop points.
pub fn sweep(input: &RatInput, param: SweepParam, values: &[f64]) -> Result<SweepResult, RatError> {
    sweep_with(&Engine::sequential(), input, param, values)
}

/// [`sweep`], with the points analyzed in adaptively-sized chunks on
/// `engine` (see [`Engine::chunk_len`]):
/// each job is one [`solve_batch`] call over a contiguous slice of `values`,
/// so the Eq. (1)–(11) arithmetic runs as columnar loops instead of
/// per-point worksheet calls. Points come back in request order and the
/// lowest-indexed failing point wins error reporting (the engine picks the
/// lowest failing chunk, the batch kernel the lowest failing point within
/// it), so output is identical at every thread count — and bit-identical to
/// the per-point pipeline it replaced.
pub fn sweep_with(
    engine: &Engine,
    input: &RatInput,
    param: SweepParam,
    values: &[f64],
) -> Result<SweepResult, RatError> {
    let _span = crate::telemetry::span("sweep");
    let chunk = engine.chunk_len(values.len(), PointCost::FullReport);
    let chunks = values.len().div_ceil(chunk);
    let per_chunk = engine.try_run(chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(values.len());
        let slice = &values[lo..hi];
        let mut batch = BatchPoints::new(input, slice.len());
        batch.push_column(param, slice);
        solve_batch(&batch)
    })?;
    let points = per_chunk
        .into_iter()
        .flatten()
        .zip(values)
        .map(|(report, &value)| SweepPoint { value, report })
        .collect();
    Ok(SweepResult { param, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;

    #[test]
    fn fclock_sweep_reproduces_table3() {
        let r = sweep(
            &pdf1d_example(),
            SweepParam::Fclock,
            &[75.0e6, 100.0e6, 150.0e6],
        )
        .unwrap();
        let s = r.speedup_series();
        assert_eq!(s.len(), 3);
        assert!((s[0].1 - 5.4).abs() < 0.05);
        assert!((s[2].1 - 10.6).abs() < 0.05);
        assert_eq!(r.best().unwrap().value, 150.0e6);
    }

    #[test]
    fn first_meeting_finds_crossover() {
        let values: Vec<f64> = (1..=30).map(|i| i as f64 * 10.0e6).collect();
        let r = sweep(&pdf1d_example(), SweepParam::Fclock, &values).unwrap();
        let cross = r.first_meeting(10.0).unwrap();
        // Needs ~142 MHz for 10x; first multiple of 10 MHz above that is 150.
        assert_eq!(cross.value, 150.0e6);
        assert_eq!(r.first_meeting(0.5).unwrap().value, values[0]);
        assert!(r.first_meeting(500.0).is_none());
    }

    #[test]
    fn invalid_point_errors_out() {
        let err = sweep(&pdf1d_example(), SweepParam::AlphaWrite, &[0.5, 1.5]);
        assert!(err.is_err(), "alpha 1.5 must fail the sweep");
    }

    #[test]
    fn every_param_applies_and_reads_back() {
        let input = pdf1d_example();
        for param in [
            SweepParam::Fclock,
            SweepParam::AlphaWrite,
            SweepParam::AlphaRead,
            SweepParam::AlphaBoth,
            SweepParam::ThroughputProc,
            SweepParam::OpsPerElement,
            SweepParam::ElementsIn,
            SweepParam::Iterations,
        ] {
            let old = param.read(&input);
            let modified = param.apply(&input, old * 0.5);
            let got = param.read(&modified);
            assert!(
                (got - old * 0.5).abs() / (old * 0.5) < 0.01,
                "{param:?}: applied {} read back {got}",
                old * 0.5
            );
        }
    }

    #[test]
    fn apply_into_on_a_restored_scratch_matches_apply_bit_for_bit() {
        let base = pdf1d_example();
        let mut scratch = base.clone();
        let all = [
            SweepParam::Fclock,
            SweepParam::AlphaWrite,
            SweepParam::AlphaRead,
            SweepParam::AlphaBoth,
            SweepParam::ThroughputProc,
            SweepParam::OpsPerElement,
            SweepParam::ElementsIn,
            SweepParam::Iterations,
        ];
        for param in all {
            let value = param.read(&base) * 0.75;
            let cloned = param.apply(&base, value);
            scratch.copy_params_from(&base);
            param.apply_into(&mut scratch, value);
            assert_eq!(scratch, cloned, "{param:?}");
        }
        // Chained applications agree too (AlphaBoth reads mutated state).
        let chained = SweepParam::AlphaBoth.apply(&SweepParam::AlphaWrite.apply(&base, 0.42), 0.6);
        scratch.copy_params_from(&base);
        SweepParam::AlphaWrite.apply_into(&mut scratch, 0.42);
        SweepParam::AlphaBoth.apply_into(&mut scratch, 0.6);
        assert_eq!(scratch, chained);
    }

    #[test]
    fn throughput_proc_sweep_saturates_at_comm_bound() {
        // As ops/cycle grows, speedup approaches the communication wall.
        let values = [10.0, 100.0, 1000.0, 1e6];
        let r = sweep(&pdf1d_example(), SweepParam::ThroughputProc, &values).unwrap();
        let s = r.speedup_series();
        assert!(
            s.windows(2).all(|w| w[1].1 >= w[0].1),
            "monotone in ops/cycle"
        );
        let wall = crate::solve::max_speedup(&pdf1d_example()).unwrap();
        assert!(s.last().unwrap().1 <= wall);
        assert!(
            s.last().unwrap().1 > wall * 0.99,
            "should approach the wall"
        );
    }

    #[test]
    fn render_contains_each_point() {
        let r = sweep(&pdf1d_example(), SweepParam::Fclock, &[75.0e6, 150.0e6]).unwrap();
        let s = r.render();
        assert_eq!(s.lines().count(), 5); // title + header + rule + 2 rows
    }

    #[test]
    fn empty_sweep_is_legal() {
        let r = sweep(&pdf1d_example(), SweepParam::Fclock, &[]).unwrap();
        assert!(r.points.is_empty());
        assert!(r.best().is_none());
    }
}
