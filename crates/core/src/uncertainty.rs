//! Monte-Carlo uncertainty propagation for RAT predictions.
//!
//! Several RAT inputs are estimates with real uncertainty: the achievable
//! clock is unknowable "until after the entire application has been converted
//! to a hardware design" (§4.2), `ops_per_element` is data-dependent for
//! irregular algorithms like MD, and alphas wobble with transfer size. Instead
//! of a single-point prediction, sample those ranges and report the speedup
//! *distribution* — turning "predicted 10.6x" into "90% chance of at least
//! 5.6x", which is the honest form of a pre-design commitment.

use crate::engine::{job_rng, job_rng_first_draws, Engine, PointCost, FIRST_BLOCK_DRAWS};
use crate::error::RatError;
use crate::params::RatInput;
use crate::solve::batch::{speedup_batch, BatchPoints};
use crate::sweep::SweepParam;
use crate::table::TextTable;
use rand::distributions::{Distribution, Uniform};
use serde::{Deserialize, Serialize};

/// A uniform uncertainty range on one parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamRange {
    /// The uncertain parameter.
    pub param: SweepParam,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl ParamRange {
    /// A range spanning `lo..=hi` for `param`. Panics if the bounds are not
    /// finite and ordered.
    pub fn new(param: SweepParam, lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "need finite lo <= hi"
        );
        Self { param, lo, hi }
    }
}

/// Speedup distribution statistics from a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertaintyReport {
    /// Number of samples drawn.
    pub samples: usize,
    /// Mean speedup.
    pub mean: f64,
    /// Standard deviation of speedup.
    pub std_dev: f64,
    /// Minimum sampled speedup.
    pub min: f64,
    /// 5th / 50th / 95th percentile speedups.
    pub p5: f64,
    /// Median speedup.
    pub p50: f64,
    /// 95th percentile speedup.
    pub p95: f64,
    /// Maximum sampled speedup.
    pub max: f64,
}

impl UncertaintyReport {
    /// Probability that the speedup is at least `target`, interpolated from
    /// the stored percentile summary. The report keeps five order statistics
    /// — `(min, 0)`, `(p5, 0.05)`, `(p50, 0.5)`, `(p95, 0.95)`, `(max, 1)` —
    /// and this treats them as knots of a piecewise-linear CDF `F`, returning
    /// `1 - F(target)`. Boundary conventions: any target at or below `min`
    /// is certain (`1.0`); any target above `max` is impossible (`0.0`); a
    /// target exactly at `max` returns `0.0`, the continuous-summary reading
    /// of "strictly better outcomes have measure zero". Degenerate segments
    /// (equal adjacent percentiles, e.g. a collapsed distribution) resolve to
    /// the upper knot's probability rather than dividing by zero.
    pub fn prob_at_least(&self, target: f64) -> f64 {
        if target <= self.min {
            return 1.0;
        }
        if target > self.max {
            return 0.0;
        }
        let knots = [
            (self.min, 0.0),
            (self.p5, 0.05),
            (self.p50, 0.5),
            (self.p95, 0.95),
            (self.max, 1.0),
        ];
        for w in knots.windows(2) {
            let (x0, f0) = w[0];
            let (x1, f1) = w[1];
            if target <= x1 {
                let f = if x1 == x0 {
                    f1
                } else {
                    f0 + (f1 - f0) * (target - x0) / (x1 - x0)
                };
                return 1.0 - f;
            }
        }
        0.0
    }

    /// Whether the design meets `target` with at least 95% interpolated
    /// probability — i.e. [`Self::prob_at_least`]`(target) >= 0.95`. At the
    /// boundary this agrees with the old `p5 >= target` rule (a target
    /// exactly at `p5` interpolates to probability 0.95 and passes), but
    /// between percentiles the answer now follows the interpolated CDF
    /// instead of snapping to the nearest stored statistic.
    pub fn likely_meets(&self, target: f64) -> bool {
        self.prob_at_least(target) >= 0.95
    }

    /// Render a summary table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title(format!("Speedup distribution ({} samples)", self.samples))
            .header(["Statistic", "Speedup"]);
        for (name, v) in [
            ("mean", self.mean),
            ("std dev", self.std_dev),
            ("min", self.min),
            ("p5", self.p5),
            ("median", self.p50),
            ("p95", self.p95),
            ("max", self.max),
        ] {
            t.row([name.to_string(), format!("{v:.2}")]);
        }
        t.render()
    }
}

/// Draw `samples` joint samples of the given parameter ranges (independent
/// uniforms), evaluate the speedup at each, and summarize the distribution.
/// Deterministic for a given `seed`.
pub fn propagate(
    input: &RatInput,
    ranges: &[ParamRange],
    samples: usize,
    seed: u64,
) -> Result<UncertaintyReport, RatError> {
    propagate_with(&Engine::sequential(), input, ranges, samples, seed)
}

/// [`propagate`], with samples evaluated in fixed-size chunks as independent
/// jobs on `engine`. Sample `j` draws from its own RNG stream
/// [`job_rng`]`(seed, j)` regardless of which chunk or thread evaluates it,
/// so the joint draw for every sample — and therefore the whole
/// distribution — is bit-identical at any thread count, and the summary
/// statistics accumulate in sample-index order.
pub fn propagate_with(
    engine: &Engine,
    input: &RatInput,
    ranges: &[ParamRange],
    samples: usize,
    seed: u64,
) -> Result<UncertaintyReport, RatError> {
    let _span = crate::telemetry::span("uncertainty");
    input.validate()?;
    if samples == 0 {
        return Err(RatError::param("need at least one Monte-Carlo sample"));
    }
    if ranges.is_empty() {
        return Err(RatError::param(
            "need at least one uncertain parameter range",
        ));
    }
    let dists: Vec<(SweepParam, Uniform<f64>)> = ranges
        .iter()
        .map(|r| (r.param, Uniform::new_inclusive(r.lo, r.hi)))
        .collect();
    // Samples are evaluated in adaptively-sized chunks as independent engine
    // jobs (enough samples per job to amortize dispatch, a few chunks per
    // worker for balance — see `Engine::chunk_len`; sizing is a pure function
    // of the sample count and thread count, so seams stay deterministic),
    // and each job is **one batch call**, not a per-sample loop: first a draw
    // phase fills one SoA column per uncertain parameter (sample `j` still
    // owns the stream `job_rng(seed, j)`, so the joint draw is bit-identical
    // at any thread count and chunk size), then `speedup_batch` evaluates the
    // whole chunk in a tight columnar loop. With at most eight uncertain
    // parameters the draw phase needs only each stream's first keystream
    // block, which `job_rng_first_draws` produces eight streams at a time
    // through the AVX2 multi-buffer ChaCha kernel; more parameters than that
    // fall back to per-sample RNGs for the draws (identical values, since
    // both paths consume the same words of the same streams) while keeping
    // the batched evaluation.
    let chunk = engine.chunk_len(samples, PointCost::McSample);
    let chunks = samples.div_ceil(chunk);
    let per_chunk = engine.try_run(chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(samples);
        let n = hi - lo;
        let mut columns: Vec<Vec<f64>> = dists.iter().map(|_| Vec::with_capacity(n)).collect();
        if dists.len() <= FIRST_BLOCK_DRAWS {
            let draws = job_rng_first_draws(seed, lo as u64, hi as u64);
            for draw in &draws {
                for (column, ((_, dist), &word)) in columns.iter_mut().zip(dists.iter().zip(draw)) {
                    column.push(dist.sample_from_u64_word(word));
                }
            }
        } else {
            for j in lo..hi {
                let mut rng = job_rng(seed, j as u64);
                for (column, (_, dist)) in columns.iter_mut().zip(&dists) {
                    column.push(dist.sample(&mut rng));
                }
            }
        }
        let mut points = BatchPoints::new(input, n);
        for ((param, _), column) in dists.iter().zip(columns) {
            points.push_column(*param, column);
        }
        speedup_batch(&points)
    })?;
    crate::telemetry::add(crate::telemetry::Metric::McSamples, samples as u64);
    let mut speedups: Vec<f64> = Vec::with_capacity(samples);
    for chunk in &per_chunk {
        speedups.extend_from_slice(chunk);
    }
    let n = speedups.len();
    // Mean and variance accumulate in sample order — deterministic and
    // thread-count invariant, since the chunks are concatenated in index
    // order. Percentiles are order statistics, computed by O(n) selection
    // rather than a full sort: `total_cmp` is a total order, so the k-th
    // smallest value is the exact value a sorted array would hold at k.
    let mean = speedups.iter().sum::<f64>() / n as f64;
    let var = speedups.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
    let min = speedups
        .iter()
        .copied()
        .min_by(f64::total_cmp)
        .expect("at least one sample");
    let max = speedups
        .iter()
        .copied()
        .max_by(f64::total_cmp)
        .expect("at least one sample");
    let mut pick = |q: f64| {
        let k = (((n - 1) as f64) * q).round() as usize;
        *speedups.select_nth_unstable_by(k, f64::total_cmp).1
    };
    let (p5, p50, p95) = (pick(0.05), pick(0.50), pick(0.95));
    Ok(UncertaintyReport {
        samples: n,
        mean,
        std_dev: var.sqrt(),
        min,
        p5,
        p50,
        p95,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;

    fn clock_range() -> Vec<ParamRange> {
        // The paper's own uncertainty: fclock anywhere in 75–150 MHz.
        vec![ParamRange::new(SweepParam::Fclock, 75.0e6, 150.0e6)]
    }

    #[test]
    fn clock_uncertainty_brackets_table3_speedups() {
        let r = propagate(&pdf1d_example(), &clock_range(), 4000, 7).unwrap();
        // Table 3's extremes are 5.4 (75 MHz) and 10.6 (150 MHz).
        assert!(r.min >= 5.3 && r.min < 5.7, "min {}", r.min);
        assert!(r.max > 10.2 && r.max <= 10.7, "max {}", r.max);
        assert!(r.p50 > r.p5 && r.p95 > r.p50);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = propagate(&pdf1d_example(), &clock_range(), 500, 42).unwrap();
        let b = propagate(&pdf1d_example(), &clock_range(), 500, 42).unwrap();
        assert_eq!(a, b);
        let c = propagate(&pdf1d_example(), &clock_range(), 500, 43).unwrap();
        assert_ne!(a.mean, c.mean);
    }

    #[test]
    fn multiple_ranges_compound() {
        let ranges = vec![
            ParamRange::new(SweepParam::Fclock, 75.0e6, 150.0e6),
            ParamRange::new(SweepParam::ThroughputProc, 16.0, 24.0),
        ];
        let r = propagate(&pdf1d_example(), &ranges, 4000, 11).unwrap();
        // Worst corner: 75 MHz and 16 ops/cycle -> speedup ~4.4.
        assert!(r.min < 4.6, "min {}", r.min);
        assert!(r.std_dev > 0.5);
    }

    #[test]
    fn degenerate_range_collapses_distribution() {
        let ranges = vec![ParamRange::new(SweepParam::Fclock, 100.0e6, 100.0e6)];
        let r = propagate(&pdf1d_example(), &ranges, 100, 1).unwrap();
        assert!(r.std_dev < 1e-12);
        // 7.148 exactly; the paper's Table 3 rounds this to 7.2.
        assert!((r.mean - 7.15).abs() < 0.05);
    }

    #[test]
    fn zero_samples_and_empty_ranges_rejected() {
        assert!(propagate(&pdf1d_example(), &clock_range(), 0, 1).is_err());
        assert!(propagate(&pdf1d_example(), &[], 10, 1).is_err());
    }

    #[test]
    fn out_of_domain_range_fails_validation() {
        let ranges = vec![ParamRange::new(SweepParam::AlphaWrite, 0.5, 1.5)];
        assert!(propagate(&pdf1d_example(), &ranges, 200, 1).is_err());
    }

    #[test]
    fn render_has_all_statistics() {
        let r = propagate(&pdf1d_example(), &clock_range(), 200, 5).unwrap();
        let s = r.render();
        for key in ["mean", "std dev", "median", "p95"] {
            assert!(s.contains(key), "missing {key}:\n{s}");
        }
    }

    #[test]
    #[should_panic(expected = "finite lo <= hi")]
    fn reversed_range_panics() {
        ParamRange::new(SweepParam::Fclock, 2.0, 1.0);
    }

    fn summary() -> UncertaintyReport {
        UncertaintyReport {
            samples: 1000,
            mean: 7.5,
            std_dev: 1.5,
            min: 5.0,
            p5: 5.5,
            p50: 7.5,
            p95: 10.0,
            max: 10.6,
        }
    }

    #[test]
    fn prob_at_least_pins_the_boundaries() {
        let r = summary();
        // At or below the minimum: certain.
        assert_eq!(r.prob_at_least(4.0), 1.0);
        assert_eq!(r.prob_at_least(r.min), 1.0);
        // Exactly at each stored percentile: the stored mass.
        assert!((r.prob_at_least(r.p5) - 0.95).abs() < 1e-12);
        assert!((r.prob_at_least(r.p50) - 0.50).abs() < 1e-12);
        assert!((r.prob_at_least(r.p95) - 0.05).abs() < 1e-12);
        // At or above the maximum: impossible under the continuous summary.
        assert_eq!(r.prob_at_least(r.max), 0.0);
        assert_eq!(r.prob_at_least(r.max + 1.0), 0.0);
        // Strictly between knots: linear, strictly decreasing.
        let mid = r.prob_at_least((r.p50 + r.p95) / 2.0);
        assert!((0.05..0.50).contains(&mid), "mid-segment prob {mid}");
        assert!((mid - 0.275).abs() < 1e-12, "linear midpoint, got {mid}");
    }

    #[test]
    fn likely_meets_agrees_with_the_old_rule_at_p5() {
        let r = summary();
        // Boundary compatibility: exactly p5 passes, just above fails.
        assert!(r.likely_meets(r.p5));
        assert!(!r.likely_meets(r.p5 + 1e-9));
        // Below p5 it interpolates toward certainty.
        assert!(r.likely_meets(r.min));
        assert!(r.likely_meets(5.2));
    }

    #[test]
    fn prob_at_least_handles_collapsed_distributions() {
        let mut r = summary();
        (r.min, r.p5, r.p50, r.p95, r.max) = (7.0, 7.0, 7.0, 7.0, 7.0);
        assert_eq!(r.prob_at_least(6.9), 1.0);
        assert_eq!(r.prob_at_least(7.0), 1.0, "target == min is certain");
        assert_eq!(r.prob_at_least(7.1), 0.0);
        assert!(r.likely_meets(7.0));
    }
}
