//! Runtime SIMD dispatch control.
//!
//! Hot kernels (the batch analytic kernels in [`crate::solve`], the bulk
//! ChaCha8 draws behind [`crate::engine::job_rng_first_draws`]) carry an
//! explicit AVX2 path selected by runtime feature detection, with the scalar
//! code always compiled as the fallback. Both paths are bit-identical by
//! construction — the vector code performs the same IEEE-754 operations in
//! the same order per lane — so dispatch is purely a performance decision.
//!
//! Setting `RAT_FORCE_SCALAR=1` in the environment disables every
//! runtime-dispatched SIMD path (kernels and RNG alike). This is the escape
//! hatch for debugging codegen issues and the lever CI uses to run the
//! differential suites against the scalar fallback; it is read once and
//! cached for the life of the process.

use std::sync::OnceLock;

/// True when `RAT_FORCE_SCALAR` is set to a non-empty value other than `0`:
/// every runtime-dispatched SIMD path must take its scalar fallback.
///
/// Read once and cached; changing the variable after the first kernel
/// dispatch has no effect.
pub fn force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| match std::env::var("RAT_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}

/// True when the AVX2 kernel paths should run: the CPU supports AVX2 and the
/// [`force_scalar`] escape hatch is off. On non-x86_64 targets this is
/// always false and only the scalar code exists.
pub fn avx2_enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| !force_scalar() && std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_wins_over_feature_detection() {
        // The cached values must be consistent with each other regardless of
        // environment: forcing scalar implies the AVX2 path is off.
        if force_scalar() {
            assert!(!avx2_enabled());
        }
    }
}
