//! Multi-FPGA (and replicated-kernel) scaling analysis.
//!
//! §6 of the paper flags "systems containing multiple FPGAs being increasingly
//! deployed" as the next target for the methodology. The extension is small
//! but sharp: M devices (or M replicated kernels on one device) divide the
//! computation, but the host interconnect remains **one serialized resource**
//! — the paper's own observation about communication utilization. Scaling
//! therefore saturates at the point where per-iteration channel time exceeds
//! the divided computation time, and the model makes that wall explicit.
//!
//! The same arithmetic covers kernel replication on a single FPGA, which is
//! how the paper reads Table 4's headroom ("potential for further speedup by
//! including additional parallel kernels").
//!
//! ```
//! # use rat_core::quantity::{Freq, Seconds, Throughput};
//! # let mut input = rat_core::params::RatInput {
//! #     name: "demo".into(),
//! #     dataset: rat_core::params::DatasetParams { elements_in: 512, elements_out: 1, bytes_per_element: 4 },
//! #     comm: rat_core::params::CommParams { ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9), alpha_write: 0.37, alpha_read: 0.16 },
//! #     comp: rat_core::params::CompParams { ops_per_element: 768.0, throughput_proc: 20.0, fclock: Freq::from_mhz(150.0) },
//! #     software: rat_core::params::SoftwareParams { t_soft: Seconds::new(0.578), iterations: 400 },
//! #     buffering: rat_core::params::Buffering::Double,
//! # };
//! use rat_core::multifpga;
//! // Four devices nearly quadruple the compute-bound 1-D PDF...
//! let four = multifpga::analyze(&input, 4).unwrap();
//! assert!(four.efficiency > 0.99);
//! // ...but the shared channel caps the scaling at t_comp/t_comm devices.
//! assert_eq!(multifpga::saturating_devices(&input).unwrap(), 24);
//! ```

use crate::engine::Engine;
use crate::error::RatError;
use crate::params::RatInput;
use crate::quantity::Seconds;
use crate::solve::stages;
use crate::table::{sci, TextTable};
use crate::throughput;
use serde::{Deserialize, Serialize};

/// The scaling prediction for a device count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiFpgaPrediction {
    /// Number of devices (or replicated kernels).
    pub devices: u32,
    /// Per-iteration computation time after division across devices.
    pub t_comp_each: Seconds,
    /// Per-iteration communication time (undivided: the channel is shared).
    pub t_comm: Seconds,
    /// Total RC execution time at steady state (double-buffered overlap
    /// assumed — multi-device deployments exist to overlap).
    pub t_rc: Seconds,
    /// Speedup over the software baseline.
    pub speedup: f64,
    /// Parallel efficiency: achieved speedup relative to `devices` times the
    /// single-device double-buffered speedup.
    pub efficiency: f64,
}

/// A scaling curve across device counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingCurve {
    /// One prediction per device count, ascending.
    pub points: Vec<MultiFpgaPrediction>,
}

impl ScalingCurve {
    /// The smallest device count within `tolerance` (fractional) of the
    /// channel-bound speedup wall — adding devices past this point is waste.
    pub fn saturation_point(&self, tolerance: f64) -> Option<u32> {
        let wall = self
            .points
            .last()?
            .speedup
            .max(self.points.iter().map(|p| p.speedup).fold(0.0, f64::max));
        self.points
            .iter()
            .find(|p| p.speedup >= wall * (1.0 - tolerance))
            .map(|p| p.devices)
    }

    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title("Multi-FPGA scaling (shared host channel, double buffered)")
            .header(["Devices", "t_comp/dev", "t_RC", "Speedup", "Efficiency"]);
        for p in &self.points {
            t.row([
                p.devices.to_string(),
                sci(p.t_comp_each.seconds()),
                sci(p.t_rc.seconds()),
                format!("{:.2}", p.speedup),
                format!("{:.0}%", p.efficiency * 100.0),
            ]);
        }
        t.render()
    }
}

/// Predict performance with the computation divided across `devices` FPGAs
/// sharing the host channel. Assumes the workload divides evenly (the paper's
/// data-parallel case studies all do) and steady-state overlap.
pub fn analyze(input: &RatInput, devices: u32) -> Result<MultiFpgaPrediction, RatError> {
    input.validate()?;
    if devices == 0 {
        return Err(RatError::param("device count must be at least 1"));
    }
    // The per-iteration comm/comp terms and the single-device overlap come
    // through the memoized stage graph: a scaling curve re-analyzes the same
    // base input per device count, so every stage but the division hits.
    let comm = stages::comm_stage(input);
    let t_comm = comm.t_comm;
    let comp = stages::comp_stage(input);
    let t_comp_each = comp / f64::from(devices);
    let t_rc = input.software.iterations as f64 * t_comm.max(t_comp_each);
    let speedup = input.software.t_soft / t_rc;
    let overlap = stages::overlap_stage(input, t_comm, comp);
    let single = input.software.t_soft / overlap.t_rc_double;
    Ok(MultiFpgaPrediction {
        devices,
        t_comp_each,
        t_comm,
        t_rc,
        speedup,
        efficiency: speedup / (f64::from(devices) * single),
    })
}

/// The scaling curve for device counts `1..=max_devices`.
pub fn scaling_curve(input: &RatInput, max_devices: u32) -> Result<ScalingCurve, RatError> {
    scaling_curve_with(&Engine::sequential(), input, max_devices)
}

/// Device counts evaluated per engine job in [`scaling_curve_with`]. Each
/// analysis is a handful of flops, so per-count jobs would be dominated by
/// dispatch overhead; chunking keeps jobs coarse enough to amortize it while
/// still splitting large curves across workers.
pub const DEVICES_PER_JOB: usize = 64;

/// [`scaling_curve`], with device counts analyzed in [`DEVICES_PER_JOB`]-sized
/// chunks as independent jobs on `engine`. Chunks fail with the
/// lowest-device-count error, matching the sequential order.
pub fn scaling_curve_with(
    engine: &Engine,
    input: &RatInput,
    max_devices: u32,
) -> Result<ScalingCurve, RatError> {
    let _span = crate::telemetry::span("multi-fpga");
    let n = max_devices.max(1) as usize;
    let chunks = n.div_ceil(DEVICES_PER_JOB);
    let per_chunk = engine.try_run(chunks, |c| {
        let lo = c * DEVICES_PER_JOB;
        let hi = (lo + DEVICES_PER_JOB).min(n);
        (lo..hi)
            .map(|i| analyze(input, i as u32 + 1))
            .collect::<Result<Vec<_>, _>>()
    })?;
    let points = per_chunk.into_iter().flatten().collect();
    Ok(ScalingCurve { points })
}

/// The device count beyond which the shared channel caps speedup: the
/// smallest `M` with `t_comp / M <= t_comm`. Devices beyond this idle on the
/// channel. Returns 1 for already-communication-bound designs.
pub fn saturating_devices(input: &RatInput) -> Result<u32, RatError> {
    input.validate()?;
    let comm = throughput::t_comm(input);
    let comp = throughput::t_comp(input);
    Ok((comp / comm).ceil().max(1.0) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;

    #[test]
    fn one_device_matches_double_buffered_baseline() {
        let input = pdf1d_example();
        let p = analyze(&input, 1).unwrap();
        let db = throughput::t_rc_double(&input);
        assert!(((p.t_rc - db) / db).abs() < 1e-12);
        assert!((p.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_is_linear_until_the_channel_wall() {
        let input = pdf1d_example();
        // t_comp/t_comm = 1.31e-4 / 5.56e-6 ~ 23.6: linear to ~23 devices.
        let sat = saturating_devices(&input).unwrap();
        assert_eq!(sat, 24);
        let curve = scaling_curve(&input, 40).unwrap();
        // Near-perfect efficiency at small counts.
        assert!(
            curve.points[3].efficiency > 0.99,
            "4 devices: {}",
            curve.points[3].efficiency
        );
        // Past the wall, speedup is flat at the comm-bound ceiling.
        let wall =
            input.software.t_soft / (input.software.iterations as f64 * throughput::t_comm(&input));
        let at_40 = curve.points[39].speedup;
        assert!((at_40 - wall).abs() / wall < 1e-9, "{at_40} vs wall {wall}");
        let at_30 = curve.points[29].speedup;
        assert!((at_30 - at_40).abs() / at_40 < 1e-9, "flat past saturation");
    }

    #[test]
    fn efficiency_decays_past_saturation() {
        let curve = scaling_curve(&pdf1d_example(), 48).unwrap();
        let e24 = curve.points[23].efficiency;
        let e48 = curve.points[47].efficiency;
        assert!(
            e48 < e24 * 0.6,
            "48-device efficiency {e48} should collapse vs {e24}"
        );
    }

    #[test]
    fn saturation_point_detection() {
        let curve = scaling_curve(&pdf1d_example(), 40).unwrap();
        let sat = curve.saturation_point(0.01).unwrap();
        assert!((22..=25).contains(&sat), "saturation at {sat}");
    }

    #[test]
    fn comm_bound_design_gains_nothing() {
        let mut input = pdf1d_example();
        input.dataset.elements_out = 65536; // huge read-back per iteration
        let one = analyze(&input, 1).unwrap();
        let eight = analyze(&input, 8).unwrap();
        assert!((one.speedup - eight.speedup).abs() / one.speedup < 1e-9);
        assert_eq!(saturating_devices(&input).unwrap(), 1);
    }

    #[test]
    fn zero_devices_rejected() {
        assert!(analyze(&pdf1d_example(), 0).is_err());
    }

    #[test]
    fn chunked_curve_matches_per_count_analysis() {
        // 130 counts spans three chunks, exercising the chunk seams.
        let input = pdf1d_example();
        let curve = scaling_curve(&input, 130).unwrap();
        assert_eq!(curve.points.len(), 130);
        for (i, p) in curve.points.iter().enumerate() {
            assert_eq!(*p, analyze(&input, i as u32 + 1).unwrap());
        }
    }

    #[test]
    fn render_has_one_row_per_count() {
        let curve = scaling_curve(&pdf1d_example(), 6).unwrap();
        assert_eq!(curve.render().lines().count(), 3 + 6);
    }
}
