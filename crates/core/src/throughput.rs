//! The RAT throughput test: Equations (1) through (7).
//!
//! Predicted performance is two terms — CPU↔FPGA communication time and FPGA
//! computation time — combined per the buffering discipline, then held against
//! the software baseline for a speedup figure. Reconfiguration and setup times
//! are ignored, exactly as the paper specifies.
//!
//! Every function here returns a typed [`Seconds`] (or a dimensionless `f64`
//! for ratios), so a caller cannot confuse a per-iteration time with a cycle
//! count or a rate.

use crate::error::RatError;
use crate::params::{Buffering, RatInput};
use crate::quantity::{Bytes, Seconds, Throughput};
use crate::utilization;
use serde::{Deserialize, Serialize};

/// The transfer-time kernel shared by Equations (1)–(3):
/// `t = bytes / (efficiency * throughput_ideal)`.
///
/// This is the **single** implementation of the paper's communication-time
/// arithmetic. The analytic worksheet ([`t_write`]/[`t_read`]) and the cycle
/// simulator's interconnect model both call it, so the two can never diverge
/// (`tests/comm_time_dedup.rs` pins this).
pub fn transfer_seconds(bytes: Bytes, efficiency: f64, ideal_bandwidth: Throughput) -> Seconds {
    bytes / (efficiency * ideal_bandwidth)
}

/// Equation (2): time to write one iteration's input block host→FPGA.
///
/// `t_write = N_elements,in * N_bytes/elt / (alpha_write * throughput_ideal)`
pub fn t_write(input: &RatInput) -> Seconds {
    transfer_seconds(
        input.input_bytes(),
        input.comm.alpha_write,
        input.comm.ideal_bandwidth,
    )
}

/// Equation (3): time to read one iteration's output block FPGA→host.
pub fn t_read(input: &RatInput) -> Seconds {
    transfer_seconds(
        input.output_bytes(),
        input.comm.alpha_read,
        input.comm.ideal_bandwidth,
    )
}

/// Equation (1): total communication time per iteration.
pub fn t_comm(input: &RatInput) -> Seconds {
    t_write(input) + t_read(input)
}

/// Equation (4): computation time per iteration.
///
/// `t_comp = N_elements,in * N_ops/elt / (f_clock * throughput_proc)`
pub fn t_comp(input: &RatInput) -> Seconds {
    input.dataset.elements_in as f64 * input.comp.ops_per_element
        / (input.comp.fclock * input.comp.throughput_proc)
}

/// Equation (5): single-buffered RC execution time.
pub fn t_rc_single(input: &RatInput) -> Seconds {
    input.software.iterations as f64 * (t_comm(input) + t_comp(input))
}

/// Equation (6): double-buffered RC execution time (steady-state overlap).
pub fn t_rc_double(input: &RatInput) -> Seconds {
    input.software.iterations as f64 * t_comm(input).max(t_comp(input))
}

/// RC execution time under the input's buffering assumption.
pub fn t_rc(input: &RatInput) -> Seconds {
    match input.buffering {
        Buffering::Single => t_rc_single(input),
        Buffering::Double => t_rc_double(input),
    }
}

/// Equation (7): predicted speedup over the software baseline (dimensionless).
pub fn speedup(input: &RatInput) -> f64 {
    input.software.t_soft / t_rc(input)
}

/// All throughput-test outputs for one input, in one struct.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPrediction {
    /// Per-iteration input (host→FPGA) transfer time, Eq. (2).
    pub t_write: Seconds,
    /// Per-iteration output (FPGA→host) transfer time, Eq. (3).
    pub t_read: Seconds,
    /// Per-iteration communication time, Eq. (1).
    pub t_comm: Seconds,
    /// Per-iteration computation time, Eq. (4).
    pub t_comp: Seconds,
    /// Total RC execution time, Eq. (5) or (6) per the buffering assumption.
    pub t_rc: Seconds,
    /// Speedup over software, Eq. (7).
    pub speedup: f64,
    /// Communication utilization, Eq. (9) or (11).
    pub util_comm: f64,
    /// Computation utilization, Eq. (8) or (10).
    pub util_comp: f64,
    /// Buffering assumption the prediction was made under.
    pub buffering: Buffering,
}

impl ThroughputPrediction {
    /// Run the complete throughput test on a validated input.
    pub fn analyze(input: &RatInput) -> Result<Self, RatError> {
        input.validate()?;
        let comm = t_comm(input);
        let comp = t_comp(input);
        let (util_comp, util_comm) = match input.buffering {
            Buffering::Single => (
                utilization::util_comp_single(comm, comp),
                utilization::util_comm_single(comm, comp),
            ),
            Buffering::Double => (
                utilization::util_comp_double(comm, comp),
                utilization::util_comm_double(comm, comp),
            ),
        };
        Ok(Self {
            t_write: t_write(input),
            t_read: t_read(input),
            t_comm: comm,
            t_comp: comp,
            t_rc: t_rc(input),
            speedup: speedup(input),
            util_comm,
            util_comp,
            buffering: input.buffering,
        })
    }

    /// Whether the design is communication-bound (`t_comm > t_comp`). For a
    /// communication-bound design, double buffering cannot rescue throughput —
    /// the channel itself is the bottleneck, and the paper notes it is a
    /// single, serialized resource.
    pub fn comm_bound(&self) -> bool {
        self.t_comm > self.t_comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;
    use crate::quantity::Freq;

    /// §4.3 works the 150 MHz case end to end; Table 3 lists all three clocks.
    #[test]
    fn paper_worked_example_tcomp() {
        let input = pdf1d_example();
        // "t_comp = 512 * 768 / (150 MHz * 20 ops/cycle) = 1.31E-4 secs"
        assert!((t_comp(&input).seconds() - 1.31072e-4).abs() < 1e-9);
    }

    #[test]
    fn paper_worked_example_tcomm() {
        let input = pdf1d_example();
        // Write: 2048 B at 0.37 GB/s = 5.54e-6; read: 4 B at 0.16 GB/s = 2.5e-8.
        assert!((t_write(&input).seconds() - 5.5351e-6).abs() < 1e-9);
        assert!((t_read(&input).seconds() - 2.5e-8).abs() < 1e-10);
        // Table 3: t_comm = 5.56E-6 s.
        assert!((t_comm(&input).seconds() - 5.56e-6).abs() < 5e-9);
    }

    #[test]
    fn paper_worked_example_trc_and_speedup() {
        let input = pdf1d_example();
        // "t_RC_SB = 400 * (5.56E-6 + 1.31E-4) = 5.46E-2 secs"
        assert!((t_rc_single(&input).seconds() - 5.46e-2).abs() < 2e-4);
        // Table 3: speedup 10.6 at 150 MHz.
        assert!((speedup(&input) - 10.6).abs() < 0.05);
    }

    #[test]
    fn table3_all_three_clocks() {
        // (fclock MHz, t_comp, t_RC, speedup) — the paper's predicted columns.
        let cases = [
            (75.0e6, 2.62e-4, 1.07e-1, 5.4),
            (100.0e6, 1.97e-4, 8.09e-2, 7.2),
            (150.0e6, 1.31e-4, 5.46e-2, 10.6),
        ];
        for (f, tc, trc, sp) in cases {
            let input = pdf1d_example().with_fclock(Freq::from_hz(f));
            assert!(
                (t_comp(&input).seconds() - tc).abs() / tc < 0.01,
                "t_comp at {f} Hz: {} vs paper {tc}",
                t_comp(&input)
            );
            assert!(
                (t_rc(&input).seconds() - trc).abs() / trc < 0.01,
                "t_RC at {f} Hz: {} vs paper {trc}",
                t_rc(&input)
            );
            assert!(
                (speedup(&input) - sp).abs() / sp < 0.01,
                "speedup at {f} Hz: {} vs paper {sp}",
                speedup(&input)
            );
        }
    }

    #[test]
    fn double_buffering_hides_the_smaller_term() {
        let input = pdf1d_example();
        let db = t_rc_double(&input);
        // Compute-bound: DB time is iterations * t_comp.
        assert!((db - 400.0 * t_comp(&input)).seconds().abs() < 1e-12);
        assert!(db < t_rc_single(&input));
    }

    #[test]
    fn db_equals_sb_only_when_one_term_vanishes() {
        // As t_comm -> 0, SB -> DB.
        let mut input = pdf1d_example();
        input.comm.alpha_write = 1.0;
        input.comm.alpha_read = 1.0;
        // effectively free communication
        input.comm.ideal_bandwidth = Throughput::from_bytes_per_sec(1e18);
        let sb = t_rc_single(&input);
        let db = t_rc_double(&input);
        assert!((sb - db) / sb < 1e-6);
    }

    #[test]
    fn prediction_struct_is_consistent() {
        let input = pdf1d_example();
        let p = ThroughputPrediction::analyze(&input).unwrap();
        assert_eq!(p.t_comm, t_comm(&input));
        assert_eq!(p.t_comp, t_comp(&input));
        assert_eq!(p.t_rc, t_rc(&input));
        assert_eq!(p.speedup, speedup(&input));
        assert!(!p.comm_bound(), "1-D PDF is compute-bound");
        // SB utilizations partition the iteration.
        assert!((p.util_comm + p.util_comp - 1.0).abs() < 1e-12);
        // Table 3: util_comm 4% at 150 MHz.
        assert!((p.util_comm - 0.04).abs() < 0.005);
    }

    #[test]
    fn analyze_rejects_invalid_input() {
        let mut input = pdf1d_example();
        input.comm.alpha_read = 0.0;
        assert!(ThroughputPrediction::analyze(&input).is_err());
    }

    #[test]
    fn speedup_scales_linearly_with_fclock_when_compute_dominates() {
        let input = pdf1d_example().with_buffering(Buffering::Double);
        let s100 = speedup(&input.with_fclock(Freq::from_mhz(100.0)));
        let s150 = speedup(&input.with_fclock(Freq::from_mhz(150.0)));
        // DB + compute-bound: speedup strictly proportional to clock.
        assert!((s150 / s100 - 1.5).abs() < 1e-9);
    }
}
