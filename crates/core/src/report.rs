//! Worksheet reports: the rendered artifacts of a RAT analysis.

use crate::params::{Buffering, RatInput};
use crate::table::{pct, sci, TextTable};
use crate::throughput::ThroughputPrediction;
use serde::{Deserialize, Serialize};

/// The complete output of one worksheet analysis: the echoed input plus every
/// derived quantity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The input the analysis was run on.
    pub input: RatInput,
    /// Throughput-test outputs under the input's buffering assumption.
    pub throughput: ThroughputPrediction,
    /// Throughput-test outputs under the *other* buffering assumption, for
    /// comparison (the paper's Figure-2 discussion is exactly this contrast).
    pub alternate: ThroughputPrediction,
    /// Predicted speedup (duplicated from `throughput` for ergonomic access).
    pub speedup: f64,
    /// The speedup ceiling if computation were free (communication-bound wall).
    pub max_speedup: f64,
}

impl Report {
    /// Render the input-parameter table in the paper's Table-2 layout.
    pub fn render_input(&self) -> String {
        let i = &self.input;
        let mut t = TextTable::new()
            .title(format!("Input parameters of {}", i.name))
            .header(["Parameter", "Value"]);
        t.section("Dataset Parameters");
        t.row([
            "N_elements, input (elements)".to_string(),
            i.dataset.elements_in.to_string(),
        ]);
        t.row([
            "N_elements, output (elements)".to_string(),
            i.dataset.elements_out.to_string(),
        ]);
        t.row([
            "N_bytes/element (bytes/element)".to_string(),
            i.dataset.bytes_per_element.to_string(),
        ]);
        t.section("Communication Parameters");
        t.row([
            "throughput_ideal (MB/s)".to_string(),
            format!("{:.0}", i.comm.ideal_bandwidth.mbytes_per_sec()),
        ]);
        t.row([
            "alpha_write (0 < a <= 1)".to_string(),
            format!("{}", i.comm.alpha_write),
        ]);
        t.row([
            "alpha_read (0 < a <= 1)".to_string(),
            format!("{}", i.comm.alpha_read),
        ]);
        t.section("Computation Parameters");
        t.row([
            "N_ops/element (ops/element)".to_string(),
            format!("{}", i.comp.ops_per_element),
        ]);
        t.row([
            "throughput_proc (ops/cycle)".to_string(),
            format!("{}", i.comp.throughput_proc),
        ]);
        t.row([
            "f_clock (MHz)".to_string(),
            format!("{:.0}", i.comp.fclock.mhz()),
        ]);
        t.section("Software Parameters");
        t.row([
            "t_soft (sec)".to_string(),
            format!("{}", i.software.t_soft.seconds()),
        ]);
        t.row([
            "N_iter (iterations)".to_string(),
            i.software.iterations.to_string(),
        ]);
        t.render()
    }

    /// Render the performance-prediction table in the paper's Table-3 layout
    /// (one column, this input's clock).
    pub fn render_performance(&self) -> String {
        let p = &self.throughput;
        let mode = match self.input.buffering {
            Buffering::Single => "SB",
            Buffering::Double => "DB",
        };
        let mut t = TextTable::new()
            .title(format!("Performance prediction for {}", self.input.name))
            .header(["Metric", "Predicted"]);
        t.row([
            "f_clk (MHz)".to_string(),
            format!("{:.0}", self.input.comp.fclock.mhz()),
        ]);
        t.row(["t_comm (sec)".to_string(), sci(p.t_comm.seconds())]);
        t.row(["t_comp (sec)".to_string(), sci(p.t_comp.seconds())]);
        t.row([format!("util_comm_{mode}"), pct(p.util_comm)]);
        t.row([format!("util_comp_{mode}"), pct(p.util_comp)]);
        t.row([format!("t_RC_{mode} (sec)"), sci(p.t_rc.seconds())]);
        t.row(["speedup".to_string(), format!("{:.1}", p.speedup)]);
        t.row([
            "speedup ceiling (comm-bound)".to_string(),
            format!("{:.1}", self.max_speedup),
        ]);
        t.render()
    }

    /// Render the report as GitHub-flavored Markdown (for docs pipelines and
    /// pull-request comments).
    pub fn render_markdown(&self) -> String {
        let i = &self.input;
        let p = &self.throughput;
        let mode = match i.buffering {
            Buffering::Single => "single-buffered",
            Buffering::Double => "double-buffered",
        };
        let bound = if p.comm_bound() {
            "communication"
        } else {
            "computation"
        };
        format!(
            "## RAT analysis: {name}\n\n\
             | Parameter | Value |\n|---|---|\n\
             | elements in / out | {ein} / {eout} |\n\
             | bytes per element | {bpe} |\n\
             | ideal bandwidth | {bw:.0} MB/s (alpha {aw} / {ar}) |\n\
             | ops per element | {ops} |\n\
             | throughput_proc | {tp} ops/cycle @ {clk:.0} MHz |\n\
             | software baseline | {tsoft} s over {iter} iterations |\n\n\
             | Prediction ({mode}) | Value |\n|---|---|\n\
             | t_comm / iteration | {tcomm} s |\n\
             | t_comp / iteration | {tcomp} s |\n\
             | t_RC | {trc} s |\n\
             | **speedup** | **{speed:.1}x** ({bound}-bound; ceiling {ceil:.1}x) |\n",
            name = i.name,
            ein = i.dataset.elements_in,
            eout = i.dataset.elements_out,
            bpe = i.dataset.bytes_per_element,
            bw = i.comm.ideal_bandwidth.mbytes_per_sec(),
            aw = i.comm.alpha_write,
            ar = i.comm.alpha_read,
            ops = i.comp.ops_per_element,
            tp = i.comp.throughput_proc,
            clk = i.comp.fclock.mhz(),
            tsoft = i.software.t_soft.seconds(),
            iter = i.software.iterations,
            tcomm = sci(p.t_comm.seconds()),
            tcomp = sci(p.t_comp.seconds()),
            trc = sci(p.t_rc.seconds()),
            speed = p.speedup,
            ceil = self.max_speedup,
        )
    }

    /// Render both tables plus a one-line verdict.
    pub fn render(&self) -> String {
        let p = &self.throughput;
        let bound = if p.comm_bound() {
            "communication"
        } else {
            "computation"
        };
        let delta = self.alternate.speedup / p.speedup;
        format!(
            "{}\n{}\nDesign is {bound}-bound; switching buffering mode would scale speedup by {delta:.2}x.\n",
            self.render_input(),
            self.render_performance(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;
    use crate::worksheet::Worksheet;

    fn report() -> Report {
        Worksheet::new(pdf1d_example()).analyze().unwrap()
    }

    #[test]
    fn input_table_lists_all_eleven_parameters() {
        let s = report().render_input();
        for needle in [
            "N_elements, input",
            "N_elements, output",
            "N_bytes/element",
            "throughput_ideal",
            "alpha_write",
            "alpha_read",
            "N_ops/element",
            "throughput_proc",
            "f_clock",
            "t_soft",
            "N_iter",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn performance_table_matches_paper_values() {
        let s = report().render_performance();
        assert!(s.contains("5.56e-6"), "t_comm missing:\n{s}");
        assert!(s.contains("1.31e-4"), "t_comp missing:\n{s}");
        // 400 * 1.36632e-4 = 5.4653e-2; the paper's Table 3 truncates to 5.46E-2.
        assert!(s.contains("5.47e-2"), "t_RC missing:\n{s}");
        assert!(s.contains("10.6"), "speedup missing:\n{s}");
    }

    #[test]
    fn full_render_names_the_bound() {
        let s = report().render();
        assert!(
            s.contains("computation-bound"),
            "1-D PDF is compute-bound:\n{s}"
        );
    }

    #[test]
    fn markdown_render_has_tables_and_verdict() {
        let s = report().render_markdown();
        assert!(s.starts_with("## RAT analysis: 1-D PDF"));
        assert!(s.contains("| **speedup** | **10.6x**"));
        assert!(s.contains("computation-bound"));
        assert!(s.contains("| t_comm / iteration | 5.56e-6 s |"));
        // Valid GFM table rows: every data line has matching pipes.
        for line in s.lines().filter(|l| l.starts_with('|')) {
            assert_eq!(line.matches('|').count(), 3, "bad row: {line}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let r = report();
        let json = toml::to_string(&r).unwrap();
        let back: Report = toml::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
