//! Error types for RAT analyses.
//!
//! [`RatError`] is the single taxonomy for every fallible step of the model
//! pipeline — worksheet validation, quantity parsing, inverse solves,
//! simulator runs, and artifact I/O. Each variant corresponds to one class of
//! failure so callers (notably the CLI) can map classes to distinct exit
//! codes; see DESIGN.md §10 for the mapping.

use std::fmt;

/// Errors produced by RAT analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum RatError {
    /// An input parameter failed validation. The string names the parameter and
    /// the constraint it violated.
    InvalidParameter(String),
    /// A dimensioned quantity could not be parsed or is out of range. Carries
    /// the worksheet field it came from, so the report says *which* field and
    /// *which* unit was wrong.
    InvalidQuantity {
        /// The worksheet field (dotted path, e.g. `comp.fclock`).
        field: String,
        /// What was wrong with it.
        message: String,
    },
    /// An inverse solve has no feasible solution (e.g. the communication time
    /// alone already exceeds the execution-time budget for the target speedup).
    Infeasible(String),
    /// The cycle simulator diverged or rejected its inputs (bad clock,
    /// mismatched batch count, non-finite makespan).
    Simulation(String),
    /// Reading or writing a cached/simulated artifact failed.
    CacheIo(String),
}

impl RatError {
    pub(crate) fn param(msg: impl Into<String>) -> Self {
        RatError::InvalidParameter(msg.into())
    }

    pub(crate) fn infeasible(msg: impl Into<String>) -> Self {
        RatError::Infeasible(msg.into())
    }

    /// An invalid-quantity error naming the offending worksheet field.
    pub fn quantity(field: impl Into<String>, message: impl Into<String>) -> Self {
        RatError::InvalidQuantity {
            field: field.into(),
            message: message.into(),
        }
    }

    /// A simulator-side failure.
    pub fn simulation(msg: impl Into<String>) -> Self {
        RatError::Simulation(msg.into())
    }

    /// A cache or artifact I/O failure.
    pub fn cache_io(msg: impl Into<String>) -> Self {
        RatError::CacheIo(msg.into())
    }
}

impl fmt::Display for RatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatError::InvalidParameter(msg) => write!(f, "invalid RAT parameter: {msg}"),
            RatError::InvalidQuantity { field, message } => {
                write!(f, "invalid quantity in field `{field}`: {message}")
            }
            RatError::Infeasible(msg) => write!(f, "infeasible: {msg}"),
            RatError::Simulation(msg) => write!(f, "simulation failed: {msg}"),
            RatError::CacheIo(msg) => write!(f, "cache I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for RatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = RatError::param("alpha_write must be in (0, 1]");
        assert!(e.to_string().contains("alpha_write"));
        let e = RatError::infeasible("communication alone exceeds budget");
        assert!(e.to_string().starts_with("infeasible"));
    }

    #[test]
    fn quantity_errors_name_their_field() {
        let e = RatError::quantity("comp.fclock", "must be positive, got 0 Hz");
        let s = e.to_string();
        assert!(s.contains("comp.fclock"), "{s}");
        assert!(s.contains("positive"), "{s}");
    }

    #[test]
    fn simulator_and_io_classes_are_distinct() {
        assert_ne!(
            RatError::simulation("diverged"),
            RatError::cache_io("diverged")
        );
        assert!(RatError::simulation("x")
            .to_string()
            .starts_with("simulation"));
        assert!(RatError::cache_io("x").to_string().starts_with("cache I/O"));
    }
}
