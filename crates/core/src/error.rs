//! Error types for RAT analyses.

use std::fmt;

/// Errors produced by RAT analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum RatError {
    /// An input parameter failed validation. The string names the parameter and
    /// the constraint it violated.
    InvalidParameter(String),
    /// An inverse solve has no feasible solution (e.g. the communication time
    /// alone already exceeds the execution-time budget for the target speedup).
    Infeasible(String),
}

impl RatError {
    pub(crate) fn param(msg: impl Into<String>) -> Self {
        RatError::InvalidParameter(msg.into())
    }

    pub(crate) fn infeasible(msg: impl Into<String>) -> Self {
        RatError::Infeasible(msg.into())
    }
}

impl fmt::Display for RatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatError::InvalidParameter(msg) => write!(f, "invalid RAT parameter: {msg}"),
            RatError::Infeasible(msg) => write!(f, "infeasible: {msg}"),
        }
    }
}

impl std::error::Error for RatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = RatError::param("alpha_write must be in (0, 1]");
        assert!(e.to_string().contains("alpha_write"));
        let e = RatError::infeasible("communication alone exceeds budget");
        assert!(e.to_string().starts_with("infeasible"));
    }
}
