//! The RAT methodology flow (the paper's Figure 1) as an executable state
//! machine.
//!
//! RAT is applied *iteratively*: identify the kernel, put the design on paper,
//! run the throughput test; on failure, revise; then the precision test; then
//! build and simulate, run the resource test; then verify on hardware. Each
//! test can bounce the designer back to a new design. [`AmenabilityTest`]
//! drives one pass through the three tests and reports which gate failed (if
//! any), with the reason, so a design-space loop can be scripted around it.

use crate::error::RatError;
use crate::params::RatInput;
use crate::precision::PrecisionReport;
use crate::resources::ResourceReport;
use crate::throughput::ThroughputPrediction;
use serde::{Deserialize, Serialize};

/// The designer's requirements, against which the three tests are judged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requirements {
    /// Minimum acceptable speedup. The paper's §1 surveys the range: 50–100x
    /// to impress "middle management", ~10x for a break-even migration, ~1x
    /// for power-constrained embedded work.
    pub min_speedup: f64,
    /// Whether designs flagged for routing strain (logic > 80%) are rejected.
    pub reject_routing_strain: bool,
}

impl Default for Requirements {
    fn default() -> Self {
        Self {
            min_speedup: 10.0,
            reject_routing_strain: false,
        }
    }
}

/// Why a pass through the methodology bounced back to redesign
/// (the red arrows in Figure 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Bounce {
    /// "Insufficient comm. or comp. throughput": the predicted speedup misses
    /// the requirement.
    InsufficientThroughput {
        /// Predicted speedup.
        predicted: f64,
        /// Required speedup.
        required: f64,
    },
    /// "Unrealizable precision requirement": no candidate format met the error
    /// tolerance.
    UnrealizablePrecision,
    /// "Insufficient resources": the design does not fit the device (or
    /// strains routing, if the requirements reject that).
    InsufficientResources {
        /// The resource that ran out.
        limiting: String,
    },
}

/// The verdict of one methodology pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// All gates passed: "PROCEED" to hardware implementation.
    Proceed,
    /// A gate failed: revise the design (paper's "NEW" loop back).
    Revise(Bounce),
}

/// Result of driving a design through the Figure-1 flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmenabilityReport {
    /// Throughput-test outputs (always runs first).
    pub throughput: ThroughputPrediction,
    /// Precision-test outputs, if the flow reached it.
    pub precision: Option<PrecisionReport>,
    /// Resource-test outputs, if the flow reached it.
    pub resources: Option<ResourceReport>,
    /// The verdict.
    pub verdict: Verdict,
}

impl AmenabilityReport {
    /// Whether the design may proceed to hardware.
    pub fn proceed(&self) -> bool {
        matches!(self.verdict, Verdict::Proceed)
    }

    /// Render the pass as a Figure-1-style checklist.
    pub fn render(&self) -> String {
        let mut out = String::from("RAT methodology pass:\n");
        let check = |ok: bool| if ok { "[PASS]" } else { "[FAIL]" };
        let thr_ok = !matches!(
            self.verdict,
            Verdict::Revise(Bounce::InsufficientThroughput { .. })
        );
        out.push_str(&format!(
            "  {} Throughput test   speedup {:.1}\n",
            check(thr_ok),
            self.throughput.speedup
        ));
        match &self.precision {
            Some(p) => {
                let ok = p.chosen.is_some();
                let label = p
                    .chosen_candidate()
                    .map(|c| c.format.to_string())
                    .unwrap_or_else(|| "no acceptable format".into());
                out.push_str(&format!("  {} Precision test    {}\n", check(ok), label));
            }
            None => out.push_str("  [----] Precision test    (not reached)\n"),
        }
        match &self.resources {
            Some(r) => {
                let ok = !matches!(
                    self.verdict,
                    Verdict::Revise(Bounce::InsufficientResources { .. })
                );
                out.push_str(&format!(
                    "  {} Resource test     limited by {}\n",
                    check(ok),
                    r.limiting_resource()
                ));
            }
            None => out.push_str("  [----] Resource test     (not reached)\n"),
        }
        out.push_str(match &self.verdict {
            Verdict::Proceed => "  => PROCEED: verify on HW platform\n",
            Verdict::Revise(_) => "  => REVISE: return to design on paper\n",
        });
        out
    }
}

/// One pass of the Figure-1 flow over a candidate design.
pub struct AmenabilityTest {
    input: RatInput,
    requirements: Requirements,
    precision: Option<PrecisionReport>,
    resources: Option<ResourceReport>,
}

impl AmenabilityTest {
    /// Start a pass for `input` under `requirements`.
    pub fn new(input: RatInput, requirements: Requirements) -> Self {
        Self {
            input,
            requirements,
            precision: None,
            resources: None,
        }
    }

    /// Attach the precision-test result (run the workload evaluation with
    /// [`crate::precision::precision_test`] first). Optional: skipping it
    /// models a design whose precision is already settled.
    pub fn with_precision(mut self, report: PrecisionReport) -> Self {
        self.precision = Some(report);
        self
    }

    /// Attach the resource-test result. Optional, with the same caveat the
    /// paper gives: skipping resource checks risks unrealizable designs.
    pub fn with_resources(mut self, report: ResourceReport) -> Self {
        self.resources = Some(report);
        self
    }

    /// Run the gates in the paper's order and produce the verdict.
    pub fn evaluate(self) -> Result<AmenabilityReport, RatError> {
        let throughput = ThroughputPrediction::analyze(&self.input)?;
        let verdict =
            if throughput.speedup < self.requirements.min_speedup {
                Verdict::Revise(Bounce::InsufficientThroughput {
                    predicted: throughput.speedup,
                    required: self.requirements.min_speedup,
                })
            } else if self.precision.as_ref().is_some_and(|p| p.chosen.is_none()) {
                Verdict::Revise(Bounce::UnrealizablePrecision)
            } else if let Some(r) = self.resources.as_ref().filter(|r| {
                !r.fits || (self.requirements.reject_routing_strain && r.routing_strain)
            }) {
                Verdict::Revise(Bounce::InsufficientResources {
                    limiting: r.limiting_resource().to_string(),
                })
            } else {
                Verdict::Proceed
            };
        Ok(AmenabilityReport {
            throughput,
            precision: self.precision,
            resources: self.resources,
            verdict,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;
    use crate::resources::{device, ResourceEstimate, ResourceReport};

    fn reqs(min_speedup: f64) -> Requirements {
        Requirements {
            min_speedup,
            reject_routing_strain: false,
        }
    }

    #[test]
    fn pdf1d_at_150mhz_proceeds_for_10x() {
        let report = AmenabilityTest::new(pdf1d_example(), reqs(10.0))
            .evaluate()
            .unwrap();
        assert!(report.proceed());
        assert!(report.render().contains("PROCEED"));
    }

    #[test]
    fn pdf1d_at_75mhz_bounces_on_throughput() {
        let input = pdf1d_example().with_fclock(crate::quantity::Freq::from_mhz(75.0)); // speedup 5.4
        let report = AmenabilityTest::new(input, reqs(10.0)).evaluate().unwrap();
        assert!(matches!(
            report.verdict,
            Verdict::Revise(Bounce::InsufficientThroughput { predicted, required })
                if predicted < 6.0 && required == 10.0
        ));
        assert!(report.render().contains("REVISE"));
    }

    #[test]
    fn resource_gate_bounces_oversized_design() {
        let est = ResourceEstimate {
            dsp: 1000,
            bram: 0,
            logic: 0,
        };
        let rr = ResourceReport::analyze(device::virtex4_lx100(), est);
        let report = AmenabilityTest::new(pdf1d_example(), reqs(5.0))
            .with_resources(rr)
            .evaluate()
            .unwrap();
        assert!(matches!(
            report.verdict,
            Verdict::Revise(Bounce::InsufficientResources { ref limiting }) if limiting == "DSP blocks"
        ));
    }

    #[test]
    fn routing_strain_bounces_only_when_rejected() {
        let dev = device::virtex4_lx100();
        let est = ResourceEstimate {
            dsp: 1,
            bram: 1,
            logic: 45_000,
        }; // >80% logic
        let rr = ResourceReport::analyze(dev.clone(), est);
        let lenient = AmenabilityTest::new(pdf1d_example(), reqs(5.0))
            .with_resources(rr.clone())
            .evaluate()
            .unwrap();
        assert!(lenient.proceed());
        let strict = AmenabilityTest::new(
            pdf1d_example(),
            Requirements {
                min_speedup: 5.0,
                reject_routing_strain: true,
            },
        )
        .with_resources(rr)
        .evaluate()
        .unwrap();
        assert!(!strict.proceed());
    }

    #[test]
    fn precision_gate_bounces_when_no_format_passes() {
        let empty = crate::precision::precision_test(&[], 0.01, 18, |_| Default::default());
        let report = AmenabilityTest::new(pdf1d_example(), reqs(5.0))
            .with_precision(empty)
            .evaluate()
            .unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Revise(Bounce::UnrealizablePrecision)
        );
    }

    #[test]
    fn skipped_tests_render_as_not_reached() {
        let report = AmenabilityTest::new(pdf1d_example(), reqs(5.0))
            .evaluate()
            .unwrap();
        let s = report.render();
        assert!(s.matches("(not reached)").count() == 2, "{s}");
    }

    #[test]
    fn gates_run_in_paper_order() {
        // A design failing both throughput and resources reports throughput
        // first (Figure 1's first diamond).
        let est = ResourceEstimate {
            dsp: 1000,
            bram: 0,
            logic: 0,
        };
        let rr = ResourceReport::analyze(device::virtex4_lx100(), est);
        let input = pdf1d_example().with_fclock(crate::quantity::Freq::from_mhz(75.0));
        let report = AmenabilityTest::new(input, reqs(10.0))
            .with_resources(rr)
            .evaluate()
            .unwrap();
        assert!(matches!(
            report.verdict,
            Verdict::Revise(Bounce::InsufficientThroughput { .. })
        ));
    }

    #[test]
    fn default_requirements_are_10x() {
        assert_eq!(Requirements::default().min_speedup, 10.0);
    }
}
