//! The test wall for `rat optimize`: the guided search's determinism,
//! differential, and dominance contracts, plus golden front fixtures for
//! the paper's worksheets.
//!
//! * **Determinism** — the same seed produces a structurally *and*
//!   textually identical outcome at 1, 2, and 8 engine jobs. All random
//!   draws happen on the coordinator thread from `job_rng(seed, gen)`;
//!   candidate evaluation rides the chunk-seam-invariant batch kernels, so
//!   job count can only change scheduling, never arithmetic. CI runs this
//!   whole suite twice — default SIMD dispatch and `RAT_FORCE_SCALAR=1` —
//!   which extends the same byte-identity across the kernel axis (dispatch
//!   is resolved once per process, so the axis needs two processes).
//! * **Differential** — every front member's stored report is bit-identical
//!   to a scalar `Worksheet::analyze` of the same design point, and carries
//!   a passing Eq. (9)–(11) resource verdict.
//! * **Dominance** — the front is mutually non-dominated and covers every
//!   feasible point the search visited.
//! * **Golden fronts** — the rendered Pareto front for the paper's 1-D PDF,
//!   2-D PDF, and MD worksheets (Tables 2–10) is pinned byte-for-byte.

use proptest::prelude::*;
use rat_core::engine::{Engine, EngineConfig};
use rat_core::optimize::{optimize, OptimizeConfig, OptimizeSpace};
use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};
use rat_core::worksheet::Worksheet;

/// Strategy: a valid worksheet across wide ranges. `throughput_proc` is
/// kept moderate so the derived search spaces mix feasible and infeasible
/// candidates instead of saturating one side.
fn worksheet() -> impl Strategy<Value = RatInput> {
    (
        1u64..100_000, // elements_in
        0u64..100_000, // elements_out
        1u64..64,      // bytes per element
        1.0e8..1.0e10, // ideal bandwidth
        0.01f64..1.0,  // alpha_write
        0.01f64..1.0,  // alpha_read
        1.0f64..1.0e6, // ops per element
        0.5f64..96.0,  // throughput_proc
        1.0e7..1.0e9,  // fclock
        1.0e-3..1.0e4, // t_soft
        1u64..10_000,  // iterations
        prop_oneof![Just(Buffering::Single), Just(Buffering::Double)],
    )
        .prop_map(
            |(ein, eout, bpe, bw, aw, ar, ops, tp, f, tsoft, iters, buffering)| RatInput {
                name: "prop".into(),
                dataset: DatasetParams {
                    elements_in: ein,
                    elements_out: eout,
                    bytes_per_element: bpe,
                },
                comm: CommParams {
                    ideal_bandwidth: Throughput::from_bytes_per_sec(bw),
                    alpha_write: aw,
                    alpha_read: ar,
                },
                comp: CompParams {
                    ops_per_element: ops,
                    throughput_proc: tp,
                    fclock: Freq::from_hz(f),
                },
                software: SoftwareParams {
                    t_soft: Seconds::new(tsoft),
                    iterations: iters,
                },
                buffering,
            },
        )
}

/// The job counts the acceptance criteria pin.
fn engines() -> [Engine; 3] {
    [
        Engine::new(EngineConfig::default().with_jobs(1)),
        Engine::new(EngineConfig::default().with_jobs(2)),
        Engine::new(EngineConfig::default().with_jobs(8)),
    ]
}

/// A search budget small enough for property-test case counts but large
/// enough that chunking differs across the three job counts.
fn quick(seed: u64) -> OptimizeConfig {
    OptimizeConfig {
        seed,
        generations: 4,
        population: 48,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed → structurally and textually identical outcome at 1, 2,
    /// and 8 jobs. Infeasible spaces must fail identically too.
    #[test]
    fn guided_search_is_job_count_invariant(
        input in worksheet(),
        seed in any::<u64>(),
    ) {
        let space = OptimizeSpace::around(input);
        let config = quick(seed);
        let [e1, e2, e8] = engines();
        let r1 = optimize(&e1, &space, &config);
        let r2 = optimize(&e2, &space, &config);
        let r8 = optimize(&e8, &space, &config);
        match (&r1, &r2, &r8) {
            (Ok(o1), Ok(o2), Ok(o8)) => {
                prop_assert_eq!(o1, o2, "outcome differs between 1 and 2 jobs");
                prop_assert_eq!(o2, o8, "outcome differs between 2 and 8 jobs");
                prop_assert_eq!(o1.render(), o8.render(), "rendered front drifted");
            }
            (Err(e1), Err(e2), Err(e8)) => {
                prop_assert_eq!(e1.to_string(), e2.to_string());
                prop_assert_eq!(e2.to_string(), e8.to_string());
            }
            _ => prop_assert!(
                false,
                "feasibility verdict differs across job counts: {:?} / {:?} / {:?}",
                r1.as_ref().map(|o| o.front.len()),
                r2.as_ref().map(|o| o.front.len()),
                r8.as_ref().map(|o| o.front.len()),
            ),
        }
    }

    /// Every front member replays bit-identically through the scalar
    /// worksheet pipeline and carries a passing resource verdict.
    #[test]
    fn front_members_replay_scalar_and_pass_the_resource_test(
        input in worksheet(),
        seed in any::<u64>(),
    ) {
        let engine = Engine::new(EngineConfig::default().with_jobs(2));
        let space = OptimizeSpace::around(input);
        let Ok(out) = optimize(&engine, &space, &quick(seed)) else {
            return Ok(()); // all-infeasible space: nothing to replay
        };
        for p in &out.front {
            let scalar = Worksheet::new(p.report.input.clone()).analyze().unwrap();
            prop_assert_eq!(
                &scalar, &p.report,
                "front member diverged from scalar analyze"
            );
            prop_assert!(p.resources.fits, "infeasible point on the front");
            prop_assert_eq!(p.objectives.speedup, p.report.speedup);
        }
    }

    /// The front is mutually non-dominated, and every feasible point the
    /// search visited is dominated by (or ties) some front member.
    #[test]
    fn front_is_non_dominated_and_covers_every_visited_point(
        input in worksheet(),
        seed in any::<u64>(),
    ) {
        let engine = Engine::new(EngineConfig::default().with_jobs(2));
        let space = OptimizeSpace::around(input);
        let Ok(out) = optimize(&engine, &space, &quick(seed)) else {
            return Ok(());
        };
        for (i, a) in out.front.iter().enumerate() {
            for (j, b) in out.front.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !a.objectives.dominates(&b.objectives),
                        "front member {} dominates front member {}", i, j
                    );
                }
            }
        }
        for (k, v) in out.visited.iter().enumerate() {
            prop_assert!(
                !out.front.iter().any(|p| v.dominates(&p.objectives)),
                "visited point {} dominates a front member", k
            );
            prop_assert!(
                out.front
                    .iter()
                    .any(|p| p.objectives.dominates(v) || p.objectives.ties(v)),
                "visited point {} escaped the front's coverage", k
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Golden fronts for the paper's worksheets (Tables 2–10). The fixtures were
// produced by this very pipeline and pin the full rendered report: any
// change to the sampler, the kernels, the resource model, or the renderer
// shows up as a byte diff here. They must hold under `RAT_FORCE_SCALAR=1`
// as well — CI runs this suite under both dispatch modes.
// ---------------------------------------------------------------------------

fn golden(worksheet_toml: &str, fixture: &str) {
    let input: RatInput = toml::from_str(worksheet_toml).expect("worksheet parses");
    let engine = Engine::new(EngineConfig::default().with_jobs(2));
    let space = OptimizeSpace::around(input);
    let config = OptimizeConfig {
        seed: 2007,
        generations: 12,
        population: 128,
    };
    let out = optimize(&engine, &space, &config).expect("paper worksheet has a front");
    assert_eq!(
        out.render().trim_end_matches('\n'),
        fixture.trim_end_matches('\n')
    );
}

#[test]
fn golden_front_pdf1d() {
    golden(
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../worksheets/pdf1d.toml"
        )),
        include_str!("fixtures/optimize_front_pdf1d.txt"),
    );
}

#[test]
fn golden_front_pdf2d() {
    golden(
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../worksheets/pdf2d.toml"
        )),
        include_str!("fixtures/optimize_front_pdf2d.txt"),
    );
}

/// The MD worksheet's golden outcome is the *infeasible* verdict: its
/// full-dataset buffer (16384 × 36 B ≈ 576 KB each way) exceeds every
/// catalog device's block RAM under Eq. (10)'s whole-buffer model, so no
/// axis setting can rescue it — and the error message (pinned here byte
/// for byte) must say which knobs to widen.
#[test]
fn golden_front_md() {
    let toml_src = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../worksheets/md.toml"
    ));
    let input: RatInput = toml::from_str(toml_src).expect("worksheet parses");
    let engine = Engine::new(EngineConfig::default().with_jobs(2));
    let space = OptimizeSpace::around(input);
    let config = OptimizeConfig {
        seed: 2007,
        generations: 12,
        population: 128,
    };
    let err = optimize(&engine, &space, &config).unwrap_err();
    assert_eq!(
        err.to_string(),
        include_str!("fixtures/optimize_front_md.txt").trim_end_matches('\n')
    );
}
