//! Differential tests pinning the batched SoA kernels to the scalar path.
//!
//! The batch kernels exist purely for throughput; their contract is
//! **bit-identity** with the per-point path at every chunk size and thread
//! count. These tests are the contract's enforcement: property tests drive
//! random (input, parameter, values) triples through both paths and compare
//! `f64::to_bits`, and deterministic tests walk the chunk-boundary sizes
//! (1, CHUNK-1, CHUNK, CHUNK+1) across 1/2/8-thread engines.

use proptest::prelude::*;
use rat_core::engine::{Engine, EngineConfig};
use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};
use rat_core::solve::batch::{solve_batch, speedup_batch, BatchPoints, CHUNK};
use rat_core::sweep::{sweep_with, SweepParam};
use rat_core::uncertainty::{propagate_with, ParamRange};
use rat_core::{solve, Worksheet};

/// Strategy: a valid worksheet input across wide parameter ranges.
fn worksheet() -> impl Strategy<Value = RatInput> {
    (
        1u64..100_000,  // elements_in
        0u64..100_000,  // elements_out
        1u64..64,       // bytes per element
        1.0e8..1.0e10,  // ideal bandwidth
        0.01f64..1.0,   // alpha_write
        0.01f64..1.0,   // alpha_read
        1.0f64..1.0e6,  // ops per element
        0.1f64..1000.0, // throughput_proc
        1.0e7..1.0e9,   // fclock
        1.0e-3..1.0e4,  // t_soft
        1u64..10_000,   // iterations
        prop_oneof![Just(Buffering::Single), Just(Buffering::Double)],
    )
        .prop_map(
            |(ein, eout, bpe, bw, aw, ar, ops, tp, f, tsoft, iters, buffering)| RatInput {
                name: "prop".into(),
                dataset: DatasetParams {
                    elements_in: ein,
                    elements_out: eout,
                    bytes_per_element: bpe,
                },
                comm: CommParams {
                    ideal_bandwidth: Throughput::from_bytes_per_sec(bw),
                    alpha_write: aw,
                    alpha_read: ar,
                },
                comp: CompParams {
                    ops_per_element: ops,
                    throughput_proc: tp,
                    fclock: Freq::from_hz(f),
                },
                software: SoftwareParams {
                    t_soft: Seconds::new(tsoft),
                    iterations: iters,
                },
                buffering,
            },
        )
}

/// `param` paired with a vector of values that keep the varied input valid.
fn values_for(
    param: SweepParam,
    range: std::ops::Range<f64>,
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = (SweepParam, Vec<f64>)> {
    proptest::collection::vec(range, len).prop_map(move |v| (param, v))
}

/// Every `SweepParam` variant, paired with a strategy for values that keep
/// the varied input valid.
fn param_and_values(len: std::ops::Range<usize>) -> impl Strategy<Value = (SweepParam, Vec<f64>)> {
    prop_oneof![
        values_for(SweepParam::Fclock, 1.0e7..1.0e9, len.clone()),
        values_for(SweepParam::AlphaWrite, 0.01..1.0, len.clone()),
        values_for(SweepParam::AlphaRead, 0.01..1.0, len.clone()),
        values_for(SweepParam::AlphaBoth, 0.01..1.0, len.clone()),
        values_for(SweepParam::ThroughputProc, 0.1..1000.0, len.clone()),
        values_for(SweepParam::OpsPerElement, 1.0..1.0e6, len.clone()),
        values_for(SweepParam::ElementsIn, 1.0..1.0e5, len.clone()),
        values_for(SweepParam::Iterations, 1.0..1.0e4, len),
    ]
}

/// `AlphaBoth` applies its value to `alpha_write` and scales `alpha_read` by
/// the same factor, so an arbitrary value in (0, 1] can push `alpha_read`
/// past 1 when the base write alpha is small. Rescale the generated values
/// into the jointly valid range `(0, min(1, alpha_write/alpha_read)]`; other
/// parameters pass through untouched.
fn clamp_for(param: SweepParam, input: &RatInput, values: Vec<f64>) -> Vec<f64> {
    if param == SweepParam::AlphaBoth {
        let cap = (input.comm.alpha_write / input.comm.alpha_read).min(1.0);
        values.into_iter().map(|f| f * cap).collect()
    } else {
        values
    }
}

proptest! {
    /// `speedup_batch` returns exactly the bits `speedup_only` produces on
    /// the materialized per-point inputs, for every parameter variant.
    #[test]
    fn batch_speedups_are_bit_identical_to_scalar(
        input in worksheet(),
        (param, values) in param_and_values(1..48usize),
    ) {
        let values = clamp_for(param, &input, values);
        let mut batch = BatchPoints::new(&input, values.len());
        batch.push_column(param, values.clone());
        let batched = speedup_batch(&batch).unwrap();
        for (i, &v) in values.iter().enumerate() {
            let scalar = solve::speedup_only(&param.apply(&input, v)).unwrap();
            prop_assert_eq!(
                batched[i].to_bits(), scalar.to_bits(),
                "{:?} at value {} (index {})", param, v, i
            );
        }
    }

    /// Two stacked columns (the Monte-Carlo shape) apply in order and stay
    /// bit-identical to the chained scalar applies.
    #[test]
    fn stacked_columns_match_chained_scalar_applies(
        input in worksheet(),
        (pa, va) in param_and_values(1..16usize),
        (pb, _) in param_and_values(1usize..2),
    ) {
        let va = clamp_for(pa, &input, va);
        // pb's values shrink each point's current value by 0.6–0.9x, which
        // preserves validity for every variant (alphas stay in (0, 1],
        // counts round to >= 1, rates stay positive).
        let vb: Vec<f64> = va
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                pb.read(&pa.apply(&input, v)) * (0.6 + 0.3 * (i as f64 / va.len() as f64))
            })
            .collect();
        let mut batch = BatchPoints::new(&input, va.len());
        batch.push_column(pa, va.clone());
        batch.push_column(pb, vb.clone());
        let batched = speedup_batch(&batch).unwrap();
        for i in 0..va.len() {
            let stepped = pb.apply(&pa.apply(&input, va[i]), vb[i]);
            let scalar = solve::speedup_only(&stepped).unwrap();
            prop_assert_eq!(
                batched[i].to_bits(), scalar.to_bits(),
                "{:?}+{:?} at index {}", pa, pb, i
            );
        }
    }

    /// The full `solve_batch` report equals the Worksheet pipeline's report.
    #[test]
    fn batch_reports_equal_worksheet_reports(
        input in worksheet(),
        (param, values) in param_and_values(1..12usize),
    ) {
        let values = clamp_for(param, &input, values);
        let mut batch = BatchPoints::new(&input, values.len());
        batch.push_column(param, values.clone());
        let reports = solve_batch(&batch).unwrap();
        for (i, &v) in values.iter().enumerate() {
            let scalar = Worksheet::new(param.apply(&input, v)).analyze().unwrap();
            prop_assert_eq!(&reports[i], &scalar, "{:?} at index {}", param, i);
        }
    }

    /// An invalid point surfaces the same error message the scalar path
    /// produces, and the *first* (lowest-index) invalid point wins.
    #[test]
    fn batch_errors_match_scalar_errors_at_the_first_bad_point(
        input in worksheet(),
        prefix in 0usize..8,
        bad_alpha in 1.5f64..10.0,
    ) {
        let mut values: Vec<f64> = vec![0.5; prefix];
        values.push(bad_alpha); // out of (0, 1]
        values.push(7.0);       // also invalid, but later: must not win
        let mut batch = BatchPoints::new(&input, values.len());
        batch.push_column(SweepParam::AlphaWrite, values.clone());
        let got = speedup_batch(&batch).unwrap_err();
        let want = SweepParam::AlphaWrite
            .apply(&input, bad_alpha)
            .validate()
            .unwrap_err();
        prop_assert_eq!(got.to_string(), want.to_string());
    }
}

/// The engines the thread-count sweeps run on: serial, 2-way, 8-way.
fn engines() -> Vec<Engine> {
    [1usize, 2, 8]
        .into_iter()
        .map(|j| Engine::new(EngineConfig::default().with_jobs(j)))
        .collect()
}

/// One representative design (the paper's 1-D PDF, Table 2).
fn pdf1d() -> RatInput {
    RatInput {
        name: "pdf1d".into(),
        dataset: DatasetParams {
            elements_in: 512,
            elements_out: 1,
            bytes_per_element: 4,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9),
            alpha_write: 0.37,
            alpha_read: 0.16,
        },
        comp: CompParams {
            ops_per_element: 768.0,
            throughput_proc: 20.0,
            fclock: Freq::from_mhz(150.0),
        },
        software: SoftwareParams {
            t_soft: Seconds::new(0.578),
            iterations: 400,
        },
        buffering: Buffering::Single,
    }
}

#[test]
fn sweep_is_bitwise_stable_across_chunk_seams_and_threads() {
    let input = pdf1d();
    for n in [1usize, CHUNK - 1, CHUNK, CHUNK + 1] {
        let values: Vec<f64> = (0..n)
            .map(|i| 5.0e7 + 2.0e8 * (i as f64 / n.max(2) as f64))
            .collect();
        let baseline = sweep_with(&Engine::sequential(), &input, SweepParam::Fclock, &values)
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert_eq!(baseline.points.len(), n);
        // Scalar ground truth at the seam indices and a mid point.
        for &i in &[0, n / 2, n - 1] {
            let scalar = solve::speedup_only(&SweepParam::Fclock.apply(&input, values[i])).unwrap();
            assert_eq!(
                baseline.points[i].report.speedup.to_bits(),
                scalar.to_bits(),
                "n={n} index {i}"
            );
        }
        for engine in engines() {
            let swept = sweep_with(&engine, &input, SweepParam::Fclock, &values).unwrap();
            assert_eq!(baseline, swept, "n={n} at {} jobs", engine.config().jobs);
        }
    }
}

#[test]
fn uncertainty_is_bitwise_stable_across_chunk_seams_and_threads() {
    let input = pdf1d();
    let ranges = [
        ParamRange::new(SweepParam::Fclock, 7.5e7, 1.5e8),
        ParamRange::new(SweepParam::ThroughputProc, 16.0, 24.0),
    ];
    for samples in [1usize, CHUNK - 1, CHUNK, CHUNK + 1] {
        let baseline = propagate_with(&Engine::sequential(), &input, &ranges, samples, 7).unwrap();
        for engine in engines() {
            let report = propagate_with(&engine, &input, &ranges, samples, 7).unwrap();
            assert_eq!(
                baseline,
                report,
                "samples={samples} at {} jobs",
                engine.config().jobs
            );
        }
    }
}
