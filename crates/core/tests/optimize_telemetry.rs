//! Telemetry pins for the guided search: the `optimize.*` counters balance
//! with the work actually dispatched.
//!
//! The global collector is process-wide, so this file holds exactly one
//! test — nothing else in the binary can race the enable/drain window.

use rat_core::engine::Engine;
use rat_core::optimize::{optimize, OptimizeConfig, OptimizeSpace};
use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};
use rat_core::telemetry::{self, Metric};

/// The paper's 1-D PDF design (Table 2).
fn pdf1d_example() -> RatInput {
    RatInput {
        name: "pdf1d".into(),
        dataset: DatasetParams {
            elements_in: 512,
            elements_out: 1,
            bytes_per_element: 4,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9),
            alpha_write: 0.37,
            alpha_read: 0.16,
        },
        comp: CompParams {
            ops_per_element: 768.0,
            throughput_proc: 20.0,
            fclock: Freq::from_mhz(150.0),
        },
        software: SoftwareParams {
            t_soft: Seconds::new(0.578),
            iterations: 400,
        },
        buffering: Buffering::Single,
    }
}

#[test]
fn optimize_counters_match_the_dispatched_work() {
    let engine = Engine::sequential();
    let space = OptimizeSpace::around(pdf1d_example());
    let config = OptimizeConfig {
        seed: 2007,
        generations: 6,
        population: 32,
    };
    let t = telemetry::global();
    t.enable();
    let out = optimize(&engine, &space, &config).unwrap();
    let profile = t.drain();
    assert_eq!(profile.metric(Metric::OptimizeGenerations), 6);
    assert_eq!(profile.metric(Metric::OptimizeEvals), 6 * 32);
    assert_eq!(
        profile.metric(Metric::OptimizeFrontSize),
        out.front.len() as u64
    );
    // The candidate evaluations really went through the batch kernels on
    // the engine: every candidate is one batched point, every chunk one job.
    assert_eq!(profile.metric(Metric::BatchPoints), 6 * 32);
    assert!(profile.metric(Metric::EngineJobs) >= 6);
    // The optimize span wrapped the run.
    assert!(profile.spans.iter().any(|s| s.path.starts_with("optimize")));
}
