//! Property tests for the analysis engine's central guarantee: every analysis
//! produces bit-identical results at any thread count, because each job's
//! inputs (including its RNG stream) are a pure function of `(root seed,
//! job index)` and results are collected in input order.
//!
//! Each property runs the same analysis on engines with 1, 2, and 8 threads
//! and demands exact equality — both structural (`PartialEq`) and textual
//! (the rendered report, which is what the CLI prints and what the
//! byte-identical-stdout acceptance criterion covers).

use proptest::prelude::*;
use rat_core::engine::{job_rng, Engine, EngineConfig};
use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};
use rat_core::sweep::SweepParam;
use rat_core::uncertainty::ParamRange;
use rat_core::{multifpga, sensitivity, sweep, uncertainty};

/// Strategy: a valid worksheet input across wide parameter ranges.
fn worksheet() -> impl Strategy<Value = RatInput> {
    (
        1u64..100_000,  // elements_in
        0u64..100_000,  // elements_out
        1u64..64,       // bytes per element
        1.0e8..1.0e10,  // ideal bandwidth
        0.01f64..1.0,   // alpha_write
        0.01f64..1.0,   // alpha_read
        1.0f64..1.0e6,  // ops per element
        0.1f64..1000.0, // throughput_proc
        1.0e7..1.0e9,   // fclock
        1.0e-3..1.0e4,  // t_soft
        1u64..10_000,   // iterations
        prop_oneof![Just(Buffering::Single), Just(Buffering::Double)],
    )
        .prop_map(
            |(ein, eout, bpe, bw, aw, ar, ops, tp, f, tsoft, iters, buffering)| RatInput {
                name: "prop".into(),
                dataset: DatasetParams {
                    elements_in: ein,
                    elements_out: eout,
                    bytes_per_element: bpe,
                },
                comm: CommParams {
                    ideal_bandwidth: Throughput::from_bytes_per_sec(bw),
                    alpha_write: aw,
                    alpha_read: ar,
                },
                comp: CompParams {
                    ops_per_element: ops,
                    throughput_proc: tp,
                    fclock: Freq::from_hz(f),
                },
                software: SoftwareParams {
                    t_soft: Seconds::new(tsoft),
                    iterations: iters,
                },
                buffering,
            },
        )
}

/// The thread counts the ISSUE's acceptance criterion names.
fn engines() -> [Engine; 3] {
    [
        Engine::new(EngineConfig::default().with_jobs(1)),
        Engine::new(EngineConfig::default().with_jobs(2)),
        Engine::new(EngineConfig::default().with_jobs(8)),
    ]
}

proptest! {
    /// A parameter sweep is bit-identical at 1, 2, and 8 threads.
    #[test]
    fn sweep_is_thread_count_invariant(
        input in worksheet(),
        values in proptest::collection::vec(1.0e7f64..1.0e9, 1..24),
    ) {
        let [e1, e2, e8] = engines();
        let r1 = sweep::sweep_with(&e1, &input, SweepParam::Fclock, &values).unwrap();
        let r2 = sweep::sweep_with(&e2, &input, SweepParam::Fclock, &values).unwrap();
        let r8 = sweep::sweep_with(&e8, &input, SweepParam::Fclock, &values).unwrap();
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&r1, &r8);
        prop_assert_eq!(r1.render(), r8.render());
    }

    /// A Monte-Carlo uncertainty propagation is bit-identical at 1, 2, and 8
    /// threads: per-sample RNG streams depend only on `(seed, sample index)`.
    #[test]
    fn uncertainty_is_thread_count_invariant(
        input in worksheet(),
        seed in any::<u64>(),
        samples in 16usize..256,
    ) {
        let lo = input.comp.fclock.hz() * 0.5;
        let hi = input.comp.fclock.hz() * 1.5;
        let ranges = [ParamRange::new(SweepParam::Fclock, lo, hi)];
        let [e1, e2, e8] = engines();
        let r1 = uncertainty::propagate_with(&e1, &input, &ranges, samples, seed).unwrap();
        let r2 = uncertainty::propagate_with(&e2, &input, &ranges, samples, seed).unwrap();
        let r8 = uncertainty::propagate_with(&e8, &input, &ranges, samples, seed).unwrap();
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&r1, &r8);
        prop_assert_eq!(r1.render(), r8.render());
    }

    /// Distinct root seeds give genuinely different Monte-Carlo outcomes
    /// (guards the stream-derivation scheme against the permuted-seed-set
    /// aliasing that a raw `root ^ index` derivation exhibits).
    #[test]
    fn uncertainty_depends_on_the_seed(input in worksheet(), seed in any::<u64>()) {
        let (lo, hi) = (input.comp.fclock.hz() * 0.5, input.comp.fclock.hz() * 1.5);
        // In comm-dominated double-buffered regimes the speedup is flat in
        // fclock, so every sample (and thus every seed) legitimately yields
        // the same mean; only responsive worksheets can distinguish seeds.
        let s_lo = rat_core::throughput::speedup(&SweepParam::Fclock.apply(&input, lo));
        let s_hi = rat_core::throughput::speedup(&SweepParam::Fclock.apply(&input, hi));
        prop_assume!(s_lo.to_bits() != s_hi.to_bits());
        let ranges = [ParamRange::new(SweepParam::Fclock, lo, hi)];
        let engine = Engine::new(EngineConfig::default().with_jobs(4));
        let a = uncertainty::propagate_with(&engine, &input, &ranges, 64, seed).unwrap();
        let b =
            uncertainty::propagate_with(&engine, &input, &ranges, 64, seed.wrapping_add(1))
                .unwrap();
        prop_assert_ne!(a.mean.to_bits(), b.mean.to_bits());
    }

    /// The multi-FPGA scaling curve is bit-identical at 1, 2, and 8 threads
    /// and in device order.
    #[test]
    fn scaling_curve_is_thread_count_invariant(
        input in worksheet(),
        max in 1u32..32,
    ) {
        let [e1, e2, e8] = engines();
        let r1 = multifpga::scaling_curve_with(&e1, &input, max).unwrap();
        let r2 = multifpga::scaling_curve_with(&e2, &input, max).unwrap();
        let r8 = multifpga::scaling_curve_with(&e8, &input, max).unwrap();
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&r1, &r8);
        for (i, p) in r1.points.iter().enumerate() {
            prop_assert_eq!(p.devices, i as u32 + 1);
        }
    }

    /// The sensitivity ranking (including its sort over elasticities) is
    /// bit-identical at 1, 2, and 8 threads.
    #[test]
    fn sensitivity_is_thread_count_invariant(input in worksheet()) {
        let [e1, e2, e8] = engines();
        let r1 = sensitivity::analyze_with(&e1, &input).unwrap();
        let r2 = sensitivity::analyze_with(&e2, &input).unwrap();
        let r8 = sensitivity::analyze_with(&e8, &input).unwrap();
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&r1, &r8);
        prop_assert_eq!(r1.render(), r8.render());
    }

    /// Job RNG streams are pure functions of `(root, index)` and never
    /// collide within an analysis.
    #[test]
    fn job_streams_are_pure_and_collision_free(root in any::<u64>()) {
        use rand::Rng;
        let mut seen = std::collections::HashSet::new();
        for j in 0..128u64 {
            let a: u64 = job_rng(root, j).gen();
            let b: u64 = job_rng(root, j).gen();
            prop_assert_eq!(a, b);
            prop_assert!(seen.insert(a), "stream collision at job {}", j);
        }
    }
}

/// `Engine::run_seeded` hands the same streams out regardless of pool size —
/// the engine-level statement of the per-job stream guarantee.
#[test]
fn run_seeded_matches_across_thread_counts() {
    use rand::Rng;
    let draw = |engine: &Engine| {
        engine.run_seeded(64, |i, mut rng| {
            (i, rng.gen::<u64>(), rng.gen::<f64>().to_bits())
        })
    };
    let [e1, e2, e8] = engines();
    let a = draw(&e1);
    assert_eq!(a, draw(&e2));
    assert_eq!(a, draw(&e8));
}
