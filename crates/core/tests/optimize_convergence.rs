//! Convergence regression tests for the guided search: two seeded
//! synthetic landscapes whose optima are known in closed form from the
//! paper's own equations.
//!
//! * **Smooth** — on an oversized device every candidate is feasible and
//!   Eq. (7) speedup is monotone in both continuous axes (and in the
//!   buffering choice), so the optimum sits at the feasible corner
//!   `(fclock_hi, throughput_hi, Double)`. The sampler clamps Gaussian
//!   draws to the axis bounds, so the search must land on the corner
//!   *exactly* within the budgeted generations.
//! * **Infeasible ridge** — a Virtex-4 LX25 (48 DSP blocks) with a 32-bit
//!   multiplier (2 DSPs per lane) caps feasibility at 24 lanes: every
//!   candidate with `throughput_proc > 24` fails the Eq. (9) DSP test. The
//!   optimum sits *on* the ridge at `throughput_proc = 24`, strictly inside
//!   the searched range — the search has to converge against a cliff it
//!   can only approach from below, and must never report a point beyond it.
//!
//! Both landscapes are deterministic (fixed seed), so the assertions are
//! regressions, not statistics: any sampler change that slows convergence
//! past the budget fails loudly.

use fixedpoint::QFormat;
use rat_core::engine::{Engine, EngineConfig};
use rat_core::optimize::{optimize, OptimizeConfig, OptimizeSpace};
use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};
use rat_core::resources::device::{stratix2_ep2s180, virtex4_lx25};
use rat_core::worksheet::Worksheet;

/// The paper's 1-D PDF design (Table 2) — the base worksheet under both
/// landscapes.
fn pdf1d_example() -> RatInput {
    RatInput {
        name: "pdf1d".into(),
        dataset: DatasetParams {
            elements_in: 512,
            elements_out: 1,
            bytes_per_element: 4,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9),
            alpha_write: 0.37,
            alpha_read: 0.16,
        },
        comp: CompParams {
            ops_per_element: 768.0,
            throughput_proc: 20.0,
            fclock: Freq::from_mhz(150.0),
        },
        software: SoftwareParams {
            t_soft: Seconds::new(0.578),
            iterations: 400,
        },
        buffering: Buffering::Single,
    }
}

/// Closed-form optimum: the scalar pipeline evaluated at a known point.
fn speedup_at(fclock_hz: f64, throughput_proc: f64, buffering: Buffering) -> f64 {
    let mut input = pdf1d_example();
    input.comp.fclock = Freq::from_hz(fclock_hz);
    input.comp.throughput_proc = throughput_proc;
    input.buffering = buffering;
    Worksheet::new(input).analyze().unwrap().speedup
}

#[test]
fn smooth_landscape_converges_to_the_feasible_corner() {
    let mut space = OptimizeSpace::around(pdf1d_example());
    space.fclock_hz = (75.0e6, 150.0e6);
    space.throughput_proc = (1.0, 20.0);
    space.devices = vec![stratix2_ep2s180()];
    space.precisions = vec![QFormat::signed(0, 17).unwrap()];
    let config = OptimizeConfig {
        seed: 11,
        generations: 16,
        population: 256,
    };
    let engine = Engine::new(EngineConfig::default().with_jobs(2));
    let out = optimize(&engine, &space, &config).unwrap();

    let optimum = speedup_at(150.0e6, 20.0, Buffering::Double);
    let best = out.best();
    // Convergence within the budget: the corner is hit exactly (the
    // sampler clamps to the bounds, and the categorical weights must have
    // learned Double buffering).
    assert_eq!(best.report.input.comp.fclock.hz(), 150.0e6);
    assert_eq!(best.report.input.comp.throughput_proc, 20.0);
    assert_eq!(best.report.input.buffering, Buffering::Double);
    assert_eq!(best.objectives.speedup, optimum);
    // And no reported point pretends to beat the closed-form optimum.
    for p in &out.front {
        assert!(p.objectives.speedup <= optimum);
        assert!(p.resources.fits);
    }
    // The oversized device makes the whole space feasible.
    assert_eq!(out.feasible_evals, out.evals);
}

#[test]
fn infeasible_ridge_converges_to_the_boundary_without_crossing_it() {
    let mut space = OptimizeSpace::around(pdf1d_example());
    space.fclock_hz = (100.0e6, 150.0e6);
    space.throughput_proc = (1.0, 40.0);
    space.devices = vec![virtex4_lx25()];
    // 32-bit multiplicands on 18-bit native multipliers: 2 DSPs per lane,
    // 48 DSP blocks on the LX25 → at most 24 lanes are feasible.
    space.precisions = vec![QFormat::signed(0, 31).unwrap()];
    let config = OptimizeConfig {
        seed: 11,
        generations: 24,
        population: 256,
    };
    let engine = Engine::new(EngineConfig::default().with_jobs(2));
    let out = optimize(&engine, &space, &config).unwrap();

    // The search really did collide with the ridge...
    assert!(
        out.feasible_evals < out.evals,
        "no candidate ever crossed the ridge: the landscape is miscalibrated"
    );
    // ...and never reported anything beyond it.
    for p in &out.front {
        assert!(p.resources.fits, "infeasible point on the front");
        assert!(
            p.report.input.comp.throughput_proc <= 24.0,
            "front member crossed the DSP ridge: tp = {}",
            p.report.input.comp.throughput_proc
        );
        assert!(p.resources.estimate.dsp <= 48);
    }
    // Convergence: within 1% of the closed-form boundary optimum at
    // (150 MHz, 24 lanes, double buffering), without ever exceeding it.
    let optimum = speedup_at(150.0e6, 24.0, Buffering::Double);
    let best = out.best();
    assert!(
        best.objectives.speedup >= 0.99 * optimum,
        "search stalled below the ridge: best {} vs optimum {}",
        best.objectives.speedup,
        optimum
    );
    assert!(best.objectives.speedup <= optimum);
}
