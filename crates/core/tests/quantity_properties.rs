//! Property-based tests for the typed quantity layer: unit round-trips,
//! the megabit/megabyte factor-of-8 relation, and the Eq. (5)/(6) scaling
//! laws that the dimensioned arithmetic must preserve.

use proptest::prelude::*;
use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Bytes, Cycles, Freq, Seconds, Throughput};
use rat_core::throughput;

/// Strategy: a valid worksheet input across wide parameter ranges.
fn worksheet() -> impl Strategy<Value = RatInput> {
    (
        1u64..100_000,  // elements_in
        0u64..100_000,  // elements_out
        1u64..64,       // bytes per element
        1.0e8..1.0e10,  // ideal bandwidth
        0.01f64..1.0,   // alpha_write
        0.01f64..1.0,   // alpha_read
        1.0f64..1.0e6,  // ops per element
        0.1f64..1000.0, // throughput_proc
        1.0e7..1.0e9,   // fclock
        1.0e-3..1.0e4,  // t_soft
        1u64..10_000,   // iterations
        prop_oneof![Just(Buffering::Single), Just(Buffering::Double)],
    )
        .prop_map(
            |(ein, eout, bpe, bw, aw, ar, ops, tp, f, tsoft, iters, buffering)| RatInput {
                name: "prop".into(),
                dataset: DatasetParams {
                    elements_in: ein,
                    elements_out: eout,
                    bytes_per_element: bpe,
                },
                comm: CommParams {
                    ideal_bandwidth: Throughput::from_bytes_per_sec(bw),
                    alpha_write: aw,
                    alpha_read: ar,
                },
                comp: CompParams {
                    ops_per_element: ops,
                    throughput_proc: tp,
                    fclock: Freq::from_hz(f),
                },
                software: SoftwareParams {
                    t_soft: Seconds::new(tsoft),
                    iterations: iters,
                },
                buffering,
            },
        )
}

proptest! {
    /// MHz→Hz→MHz round-trips exactly (one multiply each way), and the
    /// Hz-level constructor is the identity on the stored value.
    #[test]
    fn freq_unit_round_trip(mhz in 1.0f64..10_000.0) {
        let f = Freq::from_mhz(mhz);
        prop_assert!((f.mhz() - mhz).abs() <= mhz * 1e-12, "{} vs {mhz}", f.mhz());
        prop_assert_eq!(Freq::from_hz(f.hz()), f);
    }

    /// MB/s→B/s→MB/s round-trips, and the B/s constructor is the identity.
    #[test]
    fn throughput_unit_round_trip(mbytes in 0.1f64..100_000.0) {
        let t = Throughput::from_mbytes_per_sec(mbytes);
        prop_assert!(
            (t.mbytes_per_sec() - mbytes).abs() <= mbytes * 1e-12,
            "{} vs {mbytes}",
            t.mbytes_per_sec()
        );
        prop_assert_eq!(Throughput::from_bytes_per_sec(t.bytes_per_sec()), t);
    }

    /// Megabits/s and megabytes/s of the same number differ by exactly the
    /// factor of 8 the units imply, and each survives its own round trip.
    #[test]
    fn mbps_is_one_eighth_of_mbytes_per_sec(v in 1.0e-3f64..1.0e6) {
        let bits = Throughput::from_mbps(v);
        let bytes = Throughput::from_mbytes_per_sec(v);
        prop_assert!((bits.mbps() - v).abs() <= v * 1e-12, "{} vs {v}", bits.mbps());
        let ratio = bytes / bits; // dimensionless
        prop_assert!((ratio - 8.0).abs() < 1e-12, "ratio {ratio}");
    }

    /// Bytes/Throughput and Cycles/Freq produce the seconds their definitions
    /// promise, to f64 rounding.
    #[test]
    fn division_yields_the_expected_seconds(
        bytes in 1u64..1_000_000_000,
        bw in 1.0e6f64..1.0e10,
        cycles in 1u64..1_000_000_000,
        hz in 1.0e6f64..1.0e9,
    ) {
        let t = Bytes::new(bytes) / Throughput::from_bytes_per_sec(bw);
        prop_assert_eq!(t, Seconds::new(bytes as f64 / bw));
        let c = Cycles::new(cycles) / Freq::from_hz(hz);
        prop_assert_eq!(c, Seconds::new(cycles as f64 / hz));
    }

    /// Eq. (2)/(3) scale law: multiplying the channel bandwidth by `k`
    /// divides the communication time by `k` — the typed arithmetic must not
    /// perturb the float expression beyond rounding.
    #[test]
    fn t_comm_scales_inversely_with_bandwidth(input in worksheet(), k in 1.0f64..64.0) {
        let base = throughput::t_comm(&input);
        let mut fast = input;
        fast.comm.ideal_bandwidth = k * fast.comm.ideal_bandwidth;
        let scaled = throughput::t_comm(&fast);
        let expect = base.seconds() / k;
        prop_assert!(
            (scaled.seconds() - expect).abs() <= expect * 1e-12,
            "t_comm {} vs {expect}",
            scaled.seconds()
        );
    }

    /// Eq. (4) scale law: multiplying the clock by `k` divides t_comp by `k`.
    #[test]
    fn t_comp_scales_inversely_with_clock(input in worksheet(), k in 1.0f64..64.0) {
        let base = throughput::t_comp(&input);
        let mut fast = input;
        fast.comp.fclock = k * fast.comp.fclock;
        let scaled = throughput::t_comp(&fast);
        let expect = base.seconds() / k;
        prop_assert!(
            (scaled.seconds() - expect).abs() <= expect * 1e-12,
            "t_comp {} vs {expect}",
            scaled.seconds()
        );
    }

    /// Eq. (5)/(6) scale invariance: scaling bandwidth AND clock by the same
    /// `k` divides the whole RC execution time by `k` in both buffering
    /// modes, so predicted speedup scales by exactly `k`.
    #[test]
    fn eq5_eq6_scale_invariance(input in worksheet(), k in 1.0f64..64.0) {
        let base_sb = throughput::t_rc_single(&input);
        let base_db = throughput::t_rc_double(&input);
        let mut fast = input;
        fast.comm.ideal_bandwidth = k * fast.comm.ideal_bandwidth;
        fast.comp.fclock = k * fast.comp.fclock;
        for (base, scaled) in [
            (base_sb, throughput::t_rc_single(&fast)),
            (base_db, throughput::t_rc_double(&fast)),
        ] {
            let expect = base.seconds() / k;
            prop_assert!(
                (scaled.seconds() - expect).abs() <= expect * 1e-9,
                "t_rc {} vs {expect}",
                scaled.seconds()
            );
        }
    }
}
