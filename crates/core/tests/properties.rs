//! Property-based tests for the RAT equations and their extensions:
//! utilization identities, buffering dominance, solver round trips, sweep
//! apply/read laws, multi-FPGA scaling laws, and streaming consistency.

use proptest::prelude::*;
use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};
use rat_core::sweep::SweepParam;
use rat_core::{multifpga, solve, streaming, throughput, utilization};

/// Strategy: a valid worksheet input across wide parameter ranges.
fn worksheet() -> impl Strategy<Value = RatInput> {
    (
        1u64..100_000,  // elements_in
        0u64..100_000,  // elements_out
        1u64..64,       // bytes per element
        1.0e8..1.0e10,  // ideal bandwidth
        0.01f64..1.0,   // alpha_write
        0.01f64..1.0,   // alpha_read
        1.0f64..1.0e6,  // ops per element
        0.1f64..1000.0, // throughput_proc
        1.0e7..1.0e9,   // fclock
        1.0e-3..1.0e4,  // t_soft
        1u64..10_000,   // iterations
        prop_oneof![Just(Buffering::Single), Just(Buffering::Double)],
    )
        .prop_map(
            |(ein, eout, bpe, bw, aw, ar, ops, tp, f, tsoft, iters, buffering)| RatInput {
                name: "prop".into(),
                dataset: DatasetParams {
                    elements_in: ein,
                    elements_out: eout,
                    bytes_per_element: bpe,
                },
                comm: CommParams {
                    ideal_bandwidth: Throughput::from_bytes_per_sec(bw),
                    alpha_write: aw,
                    alpha_read: ar,
                },
                comp: CompParams {
                    ops_per_element: ops,
                    throughput_proc: tp,
                    fclock: Freq::from_hz(f),
                },
                software: SoftwareParams {
                    t_soft: Seconds::new(tsoft),
                    iterations: iters,
                },
                buffering,
            },
        )
}

proptest! {
    /// Every generated worksheet validates and yields positive, finite
    /// predictions.
    #[test]
    fn predictions_are_finite_and_positive(input in worksheet()) {
        prop_assert!(input.validate().is_ok());
        let p = rat_core::ThroughputPrediction::analyze(&input).unwrap();
        for v in [
            p.t_write.seconds(),
            p.t_read.seconds(),
            p.t_comm.seconds(),
            p.t_comp.seconds(),
            p.t_rc.seconds(),
            p.speedup,
        ] {
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
        }
        prop_assert!(p.t_comm > Seconds::ZERO && p.t_comp > Seconds::ZERO);
        prop_assert!(p.t_rc > Seconds::ZERO && p.speedup > 0.0);
    }

    /// Single-buffered utilizations partition unity; double-buffered
    /// utilizations max out at 1 with the dominant term saturated.
    #[test]
    fn utilization_identities(input in worksheet()) {
        let comm = throughput::t_comm(&input);
        let comp = throughput::t_comp(&input);
        let (sb_c, sb_m) = (
            utilization::util_comp_single(comm, comp),
            utilization::util_comm_single(comm, comp),
        );
        prop_assert!((sb_c + sb_m - 1.0).abs() < 1e-12);
        let (db_c, db_m) = (
            utilization::util_comp_double(comm, comp),
            utilization::util_comm_double(comm, comp),
        );
        prop_assert!(db_c <= 1.0 + 1e-12 && db_m <= 1.0 + 1e-12);
        prop_assert!((db_c - 1.0).abs() < 1e-12 || (db_m - 1.0).abs() < 1e-12);
    }

    /// Eq. (6) never exceeds Eq. (5), and both respect
    /// `speedup * t_rc == t_soft`.
    #[test]
    fn buffering_dominance_and_eq7(input in worksheet()) {
        let sb = throughput::t_rc_single(&input);
        let db = throughput::t_rc_double(&input);
        prop_assert!(db <= sb * (1.0 + 1e-12));
        prop_assert!(sb <= 2.0 * db * (1.0 + 1e-12), "SB at most 2x DB");
        let s = throughput::speedup(&input);
        prop_assert!((s * throughput::t_rc(&input).seconds() - input.software.t_soft.seconds()).abs()
            / input.software.t_soft.seconds() < 1e-12);
    }

    /// All three inverse solvers round-trip for feasible targets.
    #[test]
    fn solvers_round_trip(input in worksheet(), frac in 0.05f64..0.9) {
        let wall = solve::max_speedup(&input).unwrap();
        let current = throughput::speedup(&input);
        // throughput_proc and fclock solvers: any target below the wall.
        let target = wall * frac;
        let req_tp = solve::required_throughput_proc(&input, target).unwrap();
        let mut tuned = input.clone();
        tuned.comp.throughput_proc = req_tp;
        prop_assert!((throughput::speedup(&tuned) - target).abs() / target < 1e-9);

        let req_f = solve::required_fclock(&input, target).unwrap();
        let mut clocked = input.clone();
        clocked.comp.fclock = req_f;
        prop_assert!((throughput::speedup(&clocked) - target).abs() / target < 1e-9);

        // Alpha solver: target below the compute-bound wall, scale <= 1/alpha.
        let comp_wall = input.software.t_soft
            / (input.software.iterations as f64 * throughput::t_comp(&input));
        let alpha_target = (current * 0.5).min(comp_wall * 0.5);
        if alpha_target > 0.0 {
            if let Ok(k) = solve::required_alpha_scale(&input, alpha_target) {
                let mut scaled = input.clone();
                scaled.comm.alpha_write = (scaled.comm.alpha_write * k).min(1.0);
                scaled.comm.alpha_read = (scaled.comm.alpha_read * k).min(1.0);
                // Only exact when no clamping occurred.
                if scaled.comm.alpha_write < 1.0 && scaled.comm.alpha_read < 1.0 {
                    prop_assert!(
                        (throughput::speedup(&scaled) - alpha_target).abs() / alpha_target
                            < 1e-9
                    );
                }
            }
        }
    }

    /// Targets beyond the wall are always infeasible; below it, feasible.
    #[test]
    fn wall_separates_feasibility(input in worksheet()) {
        let wall = solve::max_speedup(&input).unwrap();
        prop_assert!(solve::required_throughput_proc(&input, wall * 0.99).is_ok());
        prop_assert!(solve::required_throughput_proc(&input, wall * 1.01).is_err());
    }

    /// SweepParam::apply followed by read returns the applied value
    /// (to integer rounding for the count-valued parameters).
    #[test]
    fn sweep_apply_read_law(input in worksheet(), scale in 0.1f64..0.95) {
        for param in [
            SweepParam::Fclock,
            SweepParam::AlphaWrite,
            SweepParam::AlphaRead,
            SweepParam::ThroughputProc,
            SweepParam::OpsPerElement,
        ] {
            let target = param.read(&input) * scale;
            let applied = param.apply(&input, target);
            prop_assert!((param.read(&applied) - target).abs() / target < 1e-12);
        }
        for param in [SweepParam::ElementsIn, SweepParam::Iterations] {
            let target = (param.read(&input) * scale).max(1.0);
            let applied = param.apply(&input, target);
            prop_assert!((param.read(&applied) - target).abs() <= 0.5 + 1e-9);
        }
    }

    /// Multi-FPGA speedup is nondecreasing in device count, efficiency is in
    /// (0, 1] against the DB baseline, and the curve converges to the solver's
    /// communication wall.
    #[test]
    fn multifpga_scaling_laws(input in worksheet(), max_m in 2u32..24) {
        check_multifpga_scaling_laws(&input, max_m);
    }

    /// Streaming: the sustained rate is the min of channel and compute rates,
    /// total time is elements/rate, and streaming beats (or ties) the
    /// double-buffered batch model.
    #[test]
    fn streaming_consistency(input in worksheet()) {
        let s = streaming::analyze(&input, streaming::ChannelDuplex::Half).unwrap();
        prop_assert!((s.sustained_rate - s.channel_rate.min(s.compute_rate)).abs()
            / s.sustained_rate < 1e-12);
        let total = (input.dataset.elements_in * input.software.iterations) as f64;
        prop_assert!((s.t_stream.seconds() * s.sustained_rate - total).abs() / total < 1e-12);
        let db = throughput::t_rc_double(&input);
        prop_assert!(s.t_stream <= db * (1.0 + 1e-9),
            "streaming {} should not lose to batch DB {}", s.t_stream, db);
        // Full duplex never slower than half duplex.
        let f = streaming::analyze(&input, streaming::ChannelDuplex::Full).unwrap();
        prop_assert!(f.sustained_rate >= s.sustained_rate * (1.0 - 1e-12));
    }

    /// Sensitivity elasticities of fclock and alpha-both sum to 1 under
    /// single buffering (t_RC is 1-homogeneous in the two rates).
    #[test]
    fn elasticity_homogeneity(mut input in worksheet()) {
        check_elasticity_homogeneity(&mut input);
    }
}

/// Body of `multifpga_scaling_laws`, shared with the named regression test so
/// the replayed corpus case runs exactly the code the property does.
fn check_multifpga_scaling_laws(input: &RatInput, max_m: u32) {
    let curve = multifpga::scaling_curve(input, max_m).unwrap();
    for w in curve.points.windows(2) {
        assert!(w[1].speedup >= w[0].speedup * (1.0 - 1e-12));
    }
    for p in &curve.points {
        assert!(p.efficiency > 0.0 && p.efficiency <= 1.0 + 1e-12);
    }
    let wall = solve::max_speedup(input).unwrap();
    assert!(curve.points.last().unwrap().speedup <= wall * (1.0 + 1e-12));
    // At (and beyond) the computed saturation point, the curve sits on the
    // wall exactly. Extremely compute-bound corners can saturate past
    // u32::MAX devices; clamp and only assert the wall when reachable.
    let sat = multifpga::saturating_devices(input).unwrap();
    if let Some(past) = sat.checked_mul(2) {
        let at_wall = multifpga::analyze(input, past).unwrap();
        assert!(
            (at_wall.speedup - wall).abs() / wall < 1e-9,
            "at {past} devices: {} vs wall {wall}",
            at_wall.speedup
        );
    }
}

/// Body of `elasticity_homogeneity` (shared with the named regression test).
fn check_elasticity_homogeneity(input: &mut RatInput) {
    input.buffering = Buffering::Single;
    // Keep alphas step-safe (the elasticity probe nudges by ±1e-4).
    input.comm.alpha_write = input.comm.alpha_write.min(0.999);
    input.comm.alpha_read = input.comm.alpha_read.min(0.999);
    let ef = rat_core::sensitivity::elasticity(input, SweepParam::Fclock, 1e-4).unwrap();
    let ea = rat_core::sensitivity::elasticity(input, SweepParam::AlphaBoth, 1e-4).unwrap();
    assert!((ef + ea - 1.0).abs() < 1e-3, "ef {ef} + ea {ea} != 1");
}

/// Build the exact `RatInput` a shrunken corpus case recorded.
#[allow(clippy::too_many_arguments)]
fn corpus_input(
    ein: u64,
    eout: u64,
    bpe: u64,
    bw: f64,
    aw: f64,
    ar: f64,
    ops: f64,
    tp: f64,
    fclock: f64,
    t_soft: f64,
    iters: u64,
    buffering: Buffering,
) -> RatInput {
    RatInput {
        name: "prop".into(),
        dataset: DatasetParams {
            elements_in: ein,
            elements_out: eout,
            bytes_per_element: bpe,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(bw),
            alpha_write: aw,
            alpha_read: ar,
        },
        comp: CompParams {
            ops_per_element: ops,
            throughput_proc: tp,
            fclock: Freq::from_hz(fclock),
        },
        software: SoftwareParams {
            t_soft: Seconds::new(t_soft),
            iterations: iters,
        },
        buffering,
    }
}

/// Replays the shrunken case formerly recorded as `properties.proptest-regressions`
/// seed `1e9cac02…`: a one-element worksheet at the minimum alpha_write
/// (0.01) with throughput_proc = 0.1 — the elasticity probe's ±1e-4 nudge
/// once broke homogeneity at this corner. The corpus file is gone; this named
/// test keeps the case reviewable.
#[test]
fn regression_elasticity_homogeneity_at_minimum_alpha_corner() {
    let mut input = corpus_input(
        1,
        1,
        2,
        1.0e8,
        0.01,
        0.093_883_368_776_244_3,
        1.0,
        0.1,
        1.0e7,
        1.0e-3,
        1,
        Buffering::Single,
    );
    check_elasticity_homogeneity(&mut input);
}

/// Replays the shrunken case formerly recorded as `properties.proptest-regressions`
/// seed `818d5fa6…`: an extremely compute-bound worksheet (488k ops/element
/// at 0.1 ops/cycle) whose saturation point overflows practical device
/// counts, with `max_m = 2` — the wall-convergence assertion once fired here.
#[test]
fn regression_multifpga_scaling_when_saturation_is_unreachable() {
    let input = corpus_input(
        15_704,
        0,
        1,
        1.0e8,
        0.682_634_285_374_654_8,
        0.01,
        488_635.728_456_773_33,
        0.1,
        1.0e7,
        1.0e-3,
        1,
        Buffering::Single,
    );
    check_multifpga_scaling_laws(&input, 2);
}
