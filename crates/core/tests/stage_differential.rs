//! Differential tests pinning the staged solve path to the monolithic chain.
//!
//! The stage graph ([`rat_core::solve::stages`]) exists to *skip* work when
//! only some inputs change; its contract is **bit-identity** with the
//! original monolithic chain at every job count and chunk size. These tests
//! enforce the contract: property tests drive random worksheets through both
//! `Worksheet::analyze` (staged) and `Worksheet::analyze_monolithic`
//! (reference) and compare `f64::to_bits`; deterministic tests walk chunk
//! seams across 1/2/8-thread engines; and counter tests pin the acceptance
//! claim that a single-axis `fclock` sweep recomputes the comm stage exactly
//! once.

use proptest::prelude::*;
use rat_core::engine::{Engine, EngineConfig};
use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};
use rat_core::solve::batch::{solve_batch, BatchPoints, CHUNK};
use rat_core::solve::stages::{self, Stage};
use rat_core::sweep::{sweep_with, SweepParam};
use rat_core::Worksheet;

/// Strategy: a valid worksheet input across wide parameter ranges.
fn worksheet() -> impl Strategy<Value = RatInput> {
    (
        1u64..100_000,  // elements_in
        0u64..100_000,  // elements_out
        1u64..64,       // bytes per element
        1.0e8..1.0e10,  // ideal bandwidth
        0.01f64..1.0,   // alpha_write
        0.01f64..1.0,   // alpha_read
        1.0f64..1.0e6,  // ops per element
        0.1f64..1000.0, // throughput_proc
        1.0e7..1.0e9,   // fclock
        1.0e-3..1.0e4,  // t_soft
        1u64..10_000,   // iterations
        prop_oneof![Just(Buffering::Single), Just(Buffering::Double)],
    )
        .prop_map(
            |(ein, eout, bpe, bw, aw, ar, ops, tp, f, tsoft, iters, buffering)| RatInput {
                name: "prop".into(),
                dataset: DatasetParams {
                    elements_in: ein,
                    elements_out: eout,
                    bytes_per_element: bpe,
                },
                comm: CommParams {
                    ideal_bandwidth: Throughput::from_bytes_per_sec(bw),
                    alpha_write: aw,
                    alpha_read: ar,
                },
                comp: CompParams {
                    ops_per_element: ops,
                    throughput_proc: tp,
                    fclock: Freq::from_hz(f),
                },
                software: SoftwareParams {
                    t_soft: Seconds::new(tsoft),
                    iterations: iters,
                },
                buffering,
            },
        )
}

proptest! {
    /// The staged `analyze` returns exactly the bits the monolithic chain
    /// produces, on both the cold (miss) and warm (hit) paths.
    #[test]
    fn staged_analyze_is_bit_identical_to_monolithic(input in worksheet()) {
        let ws = Worksheet::new(input);
        let reference = ws.analyze_monolithic().unwrap();
        stages::clear_session_cache();
        let cold = ws.analyze().unwrap();
        let warm = ws.analyze().unwrap();
        for (label, staged) in [("cold", &cold), ("warm", &warm)] {
            prop_assert_eq!(
                staged.throughput.t_rc.seconds().to_bits(),
                reference.throughput.t_rc.seconds().to_bits(),
                "t_rc ({})", label
            );
            prop_assert_eq!(
                staged.speedup.to_bits(),
                reference.speedup.to_bits(),
                "speedup ({})", label
            );
            prop_assert_eq!(
                staged.max_speedup.to_bits(),
                reference.max_speedup.to_bits(),
                "max_speedup ({})", label
            );
            prop_assert_eq!(staged, &reference, "full report ({})", label);
        }
    }

    /// The staged batch kernels (including the comm-uniform fast path taken
    /// by single-axis compute sweeps) match the monolithic chain per point.
    #[test]
    fn staged_batch_is_bit_identical_to_monolithic(
        input in worksheet(),
        fclocks in proptest::collection::vec(1.0e7..1.0e9f64, 1..24),
    ) {
        let mut batch = BatchPoints::new(&input, fclocks.len());
        batch.push_column(SweepParam::Fclock, fclocks.as_slice());
        let reports = solve_batch(&batch).unwrap();
        for (i, &f) in fclocks.iter().enumerate() {
            let scalar = Worksheet::new(SweepParam::Fclock.apply(&input, f))
                .analyze_monolithic()
                .unwrap();
            prop_assert_eq!(&reports[i], &scalar, "fclock {} (index {})", f, i);
        }
    }

    /// A varied-comm column disables the comm-uniform fast path; the general
    /// kernel must also match the monolithic chain bit for bit.
    #[test]
    fn staged_batch_with_varied_comm_matches_monolithic(
        input in worksheet(),
        alphas in proptest::collection::vec(0.01..1.0f64, 1..24),
    ) {
        let mut batch = BatchPoints::new(&input, alphas.len());
        batch.push_column(SweepParam::AlphaWrite, alphas.as_slice());
        let reports = solve_batch(&batch).unwrap();
        for (i, &a) in alphas.iter().enumerate() {
            let scalar = Worksheet::new(SweepParam::AlphaWrite.apply(&input, a))
                .analyze_monolithic()
                .unwrap();
            prop_assert_eq!(&reports[i], &scalar, "alpha_write {} (index {})", a, i);
        }
    }
}

/// The engines the thread-count sweeps run on: serial, 2-way, 8-way.
fn engines() -> Vec<Engine> {
    [1usize, 2, 8]
        .into_iter()
        .map(|j| Engine::new(EngineConfig::default().with_jobs(j)))
        .collect()
}

/// One representative design (the paper's 1-D PDF, Table 2).
fn pdf1d() -> RatInput {
    RatInput {
        name: "pdf1d".into(),
        dataset: DatasetParams {
            elements_in: 512,
            elements_out: 1,
            bytes_per_element: 4,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9),
            alpha_write: 0.37,
            alpha_read: 0.16,
        },
        comp: CompParams {
            ops_per_element: 768.0,
            throughput_proc: 20.0,
            fclock: Freq::from_mhz(150.0),
        },
        software: SoftwareParams {
            t_soft: Seconds::new(0.578),
            iterations: 400,
        },
        buffering: Buffering::Single,
    }
}

/// Staged sweeps stay bit-identical to the per-point monolithic chain at
/// every chunk seam and thread count.
#[test]
fn staged_sweep_matches_monolithic_across_seams_and_threads() {
    let input = pdf1d();
    for n in [1usize, CHUNK - 1, CHUNK, CHUNK + 1] {
        let values: Vec<f64> = (0..n)
            .map(|i| 5.0e7 + 2.0e8 * (i as f64 / n.max(2) as f64))
            .collect();
        for engine in engines() {
            let swept = sweep_with(&engine, &input, SweepParam::Fclock, &values).unwrap();
            assert_eq!(swept.points.len(), n);
            for (i, p) in swept.points.iter().enumerate() {
                let scalar = Worksheet::new(SweepParam::Fclock.apply(&input, values[i]))
                    .analyze_monolithic()
                    .unwrap();
                assert_eq!(
                    p.report,
                    scalar,
                    "n={n} index {i} at {} jobs",
                    engine.config().jobs
                );
            }
        }
    }
}

/// The acceptance pin: a single-axis `fclock` sweep computes the comm stage
/// once and *hits* for every further point — the comp/overlap/speedup stages
/// recompute per point, the comm stage does not.
#[test]
fn fclock_sweep_skips_comm_stage_recomputation() {
    let input = pdf1d();
    let values = [75.0e6, 100.0e6, 150.0e6];
    let mut batch = BatchPoints::new(&input, values.len());
    batch.push_column(SweepParam::Fclock, values.as_slice());

    // Structurally: an fclock column leaves the comm stage clean.
    let plan = batch.stage_plan();
    assert!(!plan.comm_varies, "fclock must not dirty the comm stage");
    assert!(plan.comp_varies && plan.overlap_varies && plan.speedup_varies);

    // Observed counters: comm = 1 miss + 2 hits, the rest = 3 misses each.
    let before = stages::session_counters();
    solve_batch(&batch).unwrap();
    let d = stages::session_counters().since(&before);
    assert_eq!(d.hits_for(Stage::Comm), 2, "comm hits");
    assert_eq!(d.misses_for(Stage::Comm), 1, "comm misses");
    assert_eq!(d.misses_for(Stage::Comp), 3, "comp misses");
    assert_eq!(d.misses_for(Stage::Overlap), 3, "overlap misses");
    assert_eq!(d.misses_for(Stage::Speedup), 3, "speedup misses");
    assert_eq!(d.total_hits(), 2);
    assert_eq!(d.total_misses(), 10);
}

/// The scalar path shows the same fine-grained invalidation: changing only
/// the clock leaves the comm stage cached and dirties the compute-dependent
/// stages.
#[test]
fn scalar_fclock_change_reuses_the_comm_stage() {
    stages::clear_session_cache();
    let base = pdf1d();
    Worksheet::new(base.clone()).analyze().unwrap();

    let mut faster = base;
    faster.comp.fclock = Freq::from_mhz(200.0);
    let before = stages::session_counters();
    Worksheet::new(faster).analyze().unwrap();
    let d = stages::session_counters().since(&before);
    assert_eq!(d.hits_for(Stage::Comm), 1, "comm must hit");
    assert_eq!(d.misses_for(Stage::Comm), 0);
    assert_eq!(d.misses_for(Stage::Comp), 1, "comp must recompute");
    assert_eq!(d.misses_for(Stage::Overlap), 1);
    assert_eq!(d.misses_for(Stage::Speedup), 1);
}

/// And the complement: changing only a comm parameter dirties comm (and the
/// downstream overlap/speedup stages) while the comp stage stays cached.
#[test]
fn scalar_alpha_change_reuses_the_comp_stage() {
    stages::clear_session_cache();
    let base = pdf1d();
    Worksheet::new(base.clone()).analyze().unwrap();

    let mut tuned = base;
    tuned.comm.alpha_write = 0.8;
    let before = stages::session_counters();
    Worksheet::new(tuned).analyze().unwrap();
    let d = stages::session_counters().since(&before);
    assert_eq!(d.misses_for(Stage::Comm), 1, "comm must recompute");
    assert_eq!(d.hits_for(Stage::Comp), 1, "comp must hit");
    assert_eq!(d.misses_for(Stage::Comp), 0);
    assert_eq!(d.misses_for(Stage::Overlap), 1, "overlap depends on t_comm");
    assert_eq!(d.misses_for(Stage::Speedup), 1);
}
