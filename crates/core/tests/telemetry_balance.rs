//! Span-balance property of the telemetry collector under the real engine:
//! after any instrumented workload drains, every span that opened has
//! closed, intervals are well-formed, and child spans are bracketed by a
//! span matching their parent path.
//!
//! The global collector is process-wide, so the thread-count cases run
//! sequentially inside one `#[test]` rather than as separate tests that
//! cargo would schedule concurrently.

use rat_core::engine::{Engine, EngineConfig};
use rat_core::telemetry::{self, Metric, SpanRecord};

/// Check one drained profile for balance and nesting.
fn assert_balanced(spans: &[SpanRecord], open_spans: usize, jobs: usize) {
    assert_eq!(open_spans, 0, "unclosed spans at jobs={jobs}");
    assert!(!spans.is_empty(), "no spans recorded at jobs={jobs}");
    for s in spans {
        assert!(
            s.end_ns >= s.start_ns,
            "span {} has end before start at jobs={jobs}",
            s.path
        );
        // Every non-root span must sit inside some span whose path is its
        // parent path — the interval bracketing that makes the chrome
        // export render as a proper flame graph.
        if let Some((parent_path, _)) = s.path.rsplit_once('/') {
            let bracketed = spans
                .iter()
                .any(|p| p.path == parent_path && p.start_ns <= s.start_ns && p.end_ns >= s.end_ns);
            assert!(
                bracketed,
                "span {} (tid {}) not bracketed by any '{}' span at jobs={jobs}",
                s.path, s.tid, parent_path
            );
        }
    }
}

#[test]
fn engine_spans_balance_at_every_thread_count() {
    let t = telemetry::global();
    for jobs in [1usize, 2, 8] {
        t.enable();
        {
            let _run = t.span("root");
            let _phase = t.span("phase");
            let engine = Engine::new(EngineConfig::default().with_jobs(jobs));
            let results = engine.run(24, |i| {
                // A tiny amount of real work so spans have nonzero extent.
                (0..200u64).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
            });
            assert_eq!(results.len(), 24);
        }
        let profile = t.drain();
        assert_balanced(&profile.spans, profile.open_spans, jobs);

        // The per-job spans really ran and were re-rooted under the phase
        // that spawned them, whatever thread executed them.
        let job_spans: Vec<_> = profile
            .spans
            .iter()
            .filter(|s| s.name == "engine.job")
            .collect();
        assert_eq!(job_spans.len(), 24, "jobs={jobs}");
        for s in &job_spans {
            assert!(
                s.path.starts_with("root/phase/engine.batch/"),
                "job span path {} not rooted under the spawning phase (jobs={jobs})",
                s.path
            );
        }
    }

    // The pool is persistent: the same engine serves several analysis
    // phases, and spans recorded by *reused* workers must re-root under
    // whichever phase submitted the batch — `scoped_prefix` is installed per
    // job, not per thread lifetime, so a warm worker cannot keep stamping
    // the first phase's path. Counters likewise accumulate across phases,
    // whichever thread bumped them, and gauges merge by max.
    t.enable();
    let engine = Engine::new(EngineConfig::default().with_jobs(4));
    {
        let _run = t.span("root");
        {
            let _phase = t.span("phase_a");
            let out = engine.run(8, |i| {
                telemetry::gauge_max(Metric::QueueHighWater, (i as u64) + 1);
                i
            });
            assert_eq!(out.len(), 8);
        }
        {
            let _phase = t.span("phase_b");
            let out = engine.run(16, |i| {
                telemetry::gauge_max(Metric::QueueHighWater, 3);
                i
            });
            assert_eq!(out.len(), 16);
        }
    }
    let profile = t.drain();
    assert_balanced(&profile.spans, profile.open_spans, 4);
    for (phase, expected) in [("phase_a", 8), ("phase_b", 16)] {
        let prefix = format!("root/{phase}/engine.batch/");
        let count = profile
            .spans
            .iter()
            .filter(|s| s.name == "engine.job" && s.path.starts_with(&prefix))
            .count();
        assert_eq!(
            count, expected,
            "warm-pool job spans must re-root under {phase}"
        );
    }
    assert_eq!(
        profile.metric(Metric::EngineJobs),
        24,
        "engine.jobs must accumulate across phases on one pool"
    );
    assert_eq!(profile.metric(Metric::EngineBatches), 2);
    assert_eq!(
        profile.metric(Metric::QueueHighWater),
        8,
        "queue.high_water merges by max across phases and worker threads"
    );
    drop(engine);

    // Drain starts a fresh session: nothing from the runs above may leak
    // into the next enable/drain cycle. (Same #[test] as the balance cases
    // because the collector is process-global and cargo runs separate tests
    // concurrently.)
    t.enable();
    {
        let _s = t.span("once");
    }
    let first = t.drain();
    assert!(first.spans.iter().any(|s| s.name == "once"));

    t.enable();
    let second = t.drain();
    assert!(
        second.spans.iter().all(|s| s.name != "once"),
        "drain must not leak spans into the next session"
    );
}
