//! Property-based tests for the fixed-point substrate: quantization error
//! bounds, arithmetic laws, and analysis invariants.

use fixedpoint::{ErrorStats, Fx, MiniFloat, Overflow, QFormat, RangeAnalysis, Rounding};
use proptest::prelude::*;

/// Strategy: a valid signed format with sane ranges for property work.
fn signed_format() -> impl Strategy<Value = QFormat> {
    (0u32..8, 1u32..30).prop_map(|(i, f)| QFormat::signed(i, f).expect("valid"))
}

proptest! {
    /// Round-to-nearest quantization error never exceeds half a ULP for
    /// in-range values.
    #[test]
    fn nearest_quantization_error_within_half_ulp(fmt in signed_format(), seed in 0.0f64..1.0) {
        let v = fmt.min_value() + seed * (fmt.max_value() - fmt.min_value());
        let err = Fx::quantization_error(v, fmt, Rounding::Nearest);
        prop_assert!(err <= fmt.ulp() / 2.0 + 1e-15, "err {err} > ulp/2 {}", fmt.ulp() / 2.0);
    }

    /// Floor quantization error is below one ULP and the result never exceeds
    /// the input.
    #[test]
    fn floor_quantization_bounds(fmt in signed_format(), seed in 0.0f64..1.0) {
        let v = fmt.min_value() + seed * (fmt.max_value() - fmt.min_value());
        let q = Fx::from_f64(v, fmt, Rounding::Floor, Overflow::Saturate).to_f64();
        prop_assert!(q <= v + 1e-15);
        prop_assert!(v - q < fmt.ulp() + 1e-15);
    }

    /// Representable values round-trip exactly under every rounding mode.
    #[test]
    fn representable_values_round_trip(fmt in signed_format(), raw_seed in any::<i64>()) {
        let span = (fmt.raw_max() as i128 - fmt.raw_min() as i128 + 1) as i64;
        let raw = fmt.raw_min() + (raw_seed.rem_euclid(span));
        let v = Fx::from_raw(raw, fmt, Overflow::Saturate);
        for rounding in [Rounding::Nearest, Rounding::Floor, Rounding::Ceil, Rounding::TowardZero] {
            let back = Fx::from_f64(v.to_f64(), fmt, rounding, Overflow::Saturate);
            prop_assert_eq!(back.raw(), v.raw(), "mode {:?}", rounding);
        }
    }

    /// Saturating addition is commutative and bounded by the format.
    #[test]
    fn saturating_add_commutative_and_bounded(
        fmt in signed_format(),
        a_seed in 0.0f64..1.0,
        b_seed in 0.0f64..1.0,
    ) {
        let span = fmt.max_value() - fmt.min_value();
        let a = Fx::from_f64(fmt.min_value() + a_seed * span, fmt, Rounding::Nearest, Overflow::Saturate);
        let b = Fx::from_f64(fmt.min_value() + b_seed * span, fmt, Rounding::Nearest, Overflow::Saturate);
        let ab = a.add(b, Overflow::Saturate);
        let ba = b.add(a, Overflow::Saturate);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab.raw() >= fmt.raw_min() && ab.raw() <= fmt.raw_max());
    }

    /// Wrapping addition is associative (a property saturation deliberately
    /// gives up).
    #[test]
    fn wrapping_add_associative(
        fmt in signed_format(),
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
        s3 in 0.0f64..1.0,
    ) {
        let span = fmt.max_value() - fmt.min_value();
        let v = |s: f64| Fx::from_f64(fmt.min_value() + s * span, fmt, Rounding::Nearest, Overflow::Wrap);
        let (a, b, c) = (v(s1), v(s2), v(s3));
        let left = a.add(b, Overflow::Wrap).add(c, Overflow::Wrap);
        let right = a.add(b.add(c, Overflow::Wrap), Overflow::Wrap);
        prop_assert_eq!(left, right);
    }

    /// `a - b` then `+ b` is the identity when no saturation occurs
    /// (guaranteed by shrinking the operands into the safe half-range).
    #[test]
    fn sub_then_add_identity_in_safe_range(
        fmt in signed_format(),
        a_seed in 0.26f64..0.74,
        b_seed in 0.26f64..0.74,
    ) {
        let span = fmt.max_value() - fmt.min_value();
        let a = Fx::from_f64(fmt.min_value() + a_seed * span, fmt, Rounding::Nearest, Overflow::Saturate);
        let b = Fx::from_f64(fmt.min_value() + b_seed * span, fmt, Rounding::Nearest, Overflow::Saturate);
        let round_trip = a.sub(b, Overflow::Saturate).add(b, Overflow::Saturate);
        prop_assert_eq!(round_trip, a);
    }

    /// Multiplication is commutative and its rounding error is within half a
    /// ULP of the exact product of the quantized operands (when that product
    /// is in range).
    #[test]
    fn mul_commutative_with_bounded_error(
        fmt in signed_format(),
        a_seed in 0.3f64..0.7,
        b_seed in 0.3f64..0.7,
    ) {
        let span = fmt.max_value() - fmt.min_value();
        let a = Fx::from_f64(fmt.min_value() + a_seed * span, fmt, Rounding::Nearest, Overflow::Saturate);
        let b = Fx::from_f64(fmt.min_value() + b_seed * span, fmt, Rounding::Nearest, Overflow::Saturate);
        let ab = a.mul(b, Rounding::Nearest, Overflow::Saturate);
        let ba = b.mul(a, Rounding::Nearest, Overflow::Saturate);
        prop_assert_eq!(ab, ba);
        let exact = a.to_f64() * b.to_f64();
        if exact > fmt.min_value() && exact < fmt.max_value() {
            prop_assert!((ab.to_f64() - exact).abs() <= fmt.ulp() / 2.0 + 1e-12);
        }
    }

    /// Requantizing to a wider format and back is the identity.
    #[test]
    fn widen_then_narrow_is_identity(fmt in signed_format(), seed in 0.0f64..1.0) {
        let wide = QFormat::signed(fmt.int_bits(), fmt.frac_bits() + 8).expect("valid");
        let span = fmt.max_value() - fmt.min_value();
        let v = Fx::from_f64(fmt.min_value() + seed * span, fmt, Rounding::Nearest, Overflow::Saturate);
        let back = v
            .requantize(wide, Rounding::Nearest, Overflow::Saturate)
            .requantize(fmt, Rounding::Nearest, Overflow::Saturate);
        prop_assert_eq!(back, v);
    }

    /// Ordering agrees with the real values.
    #[test]
    fn ordering_agrees_with_f64(fmt in signed_format(), s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
        let span = fmt.max_value() - fmt.min_value();
        let a = Fx::from_f64(fmt.min_value() + s1 * span, fmt, Rounding::Nearest, Overflow::Saturate);
        let b = Fx::from_f64(fmt.min_value() + s2 * span, fmt, Rounding::Nearest, Overflow::Saturate);
        prop_assert_eq!(a.partial_cmp(&b), a.to_f64().partial_cmp(&b.to_f64()));
    }

    /// ErrorStats::merge is equivalent to sequential accumulation.
    #[test]
    fn error_stats_merge_law(
        xs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..50),
        split in 0usize..50,
    ) {
        let split = split.min(xs.len());
        let mut whole = ErrorStats::new();
        for &(r, q) in &xs {
            whole.record(r, q);
        }
        let mut left = ErrorStats::new();
        for &(r, q) in &xs[..split] {
            left.record(r, q);
        }
        let mut right = ErrorStats::new();
        for &(r, q) in &xs[split..] {
            right.record(r, q);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.max_abs_error() - whole.max_abs_error()).abs() < 1e-12);
        prop_assert!((left.rms_error() - whole.rms_error()).abs() < 1e-9);
    }

    /// RangeAnalysis's suggested format always contains every observed sample.
    #[test]
    fn suggested_format_contains_all_samples(
        samples in prop::collection::vec(-1e6f64..1e6, 1..100),
        frac in 0u32..20,
    ) {
        let r = RangeAnalysis::of(&samples);
        let fmt = r.suggest_format(frac).expect("valid format");
        for &v in &samples {
            prop_assert!(fmt.contains(v), "{v} escapes {fmt}");
        }
    }

    /// MiniFloat quantization is idempotent and within the relative error
    /// bound for normal values.
    #[test]
    fn minifloat_quantization_laws(
        exp_bits in 4u32..9,
        mant_bits in 2u32..24,
        v in -1e4f64..1e4,
    ) {
        let fmt = MiniFloat::new(exp_bits, mant_bits);
        let q = fmt.quantize(v);
        // Idempotence: a quantized value is a fixed point of quantization.
        let qq = fmt.quantize(q);
        prop_assert_eq!(q.to_bits(), qq.to_bits(), "quantize not idempotent for {}", v);
        // Relative error bound for normal, in-range values.
        if v.abs() >= fmt.min_positive_normal() && v.abs() <= fmt.max_value() {
            prop_assert!(
                ((q - v) / v).abs() <= fmt.rel_error_bound() * (1.0 + 1e-12),
                "v={v}, q={q}"
            );
        }
        // Sign preservation.
        if v != 0.0 && q != 0.0 && q.is_finite() {
            prop_assert_eq!(v.signum(), q.signum());
        }
    }

    /// MiniFloat quantization is monotone: a <= b implies q(a) <= q(b).
    #[test]
    fn minifloat_monotone(
        mant_bits in 2u32..20,
        a in -1e4f64..1e4,
        b in -1e4f64..1e4,
    ) {
        let fmt = MiniFloat::new(8, mant_bits);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(fmt.quantize(lo) <= fmt.quantize(hi));
    }

    /// Quantization error decreases (weakly) with fractional width.
    #[test]
    fn error_weakly_decreases_with_width(int_bits in 0u32..4, v in -10.0f64..10.0) {
        let mut last = f64::INFINITY;
        for frac in [2u32, 6, 10, 14, 18] {
            let fmt = QFormat::signed(int_bits, frac).expect("valid");
            if !fmt.contains(v) {
                continue;
            }
            let err = Fx::quantization_error(v, fmt, Rounding::Nearest);
            prop_assert!(err <= last + 1e-15);
            last = err;
        }
    }
}
