//! Dynamic-range analysis of sample data.
//!
//! Before choosing fractional precision, a designer must size the *integer* field
//! so intermediate values never overflow. [`RangeAnalysis`] scans sample data
//! (inputs, or traced intermediates from a reference run) and reports the minimal
//! integer bit count.

use crate::format::{FormatError, QFormat};
use serde::{Deserialize, Serialize};

/// Observed dynamic range of a signal.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RangeAnalysis {
    min: f64,
    max: f64,
    count: u64,
}

impl Default for RangeAnalysis {
    fn default() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }
}

impl RangeAnalysis {
    /// An empty analysis (no samples observed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one sample. Non-finite samples are ignored.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.count += 1;
    }

    /// Observe every sample in a slice.
    pub fn observe_all(&mut self, values: &[f64]) {
        for &v in values {
            self.observe(v);
        }
    }

    /// Build an analysis from a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut r = Self::new();
        r.observe_all(values);
        r
    }

    /// Smallest observed value, or `None` if no samples were recorded.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value, or `None` if no samples were recorded.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of (finite) samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether any observed value is negative (requiring a signed format).
    pub fn needs_sign(&self) -> bool {
        self.count > 0 && self.min < 0.0
    }

    /// Minimal integer bit count so that all observed values fit
    /// (excluding the sign bit; fractional bits do not affect this).
    ///
    /// Returns 0 for data entirely within `(-1, 1)`.
    pub fn required_int_bits(&self) -> u32 {
        if self.count == 0 {
            return 0;
        }
        let mag = self.max.abs().max(if self.min < 0.0 {
            // A signed format with `i` integer bits reaches down to -2^i exactly,
            // so a min of exactly -2^i needs only i bits; nudge by epsilon.
            self.min.abs() * (1.0 - f64::EPSILON)
        } else {
            0.0
        });
        if mag < 1.0 {
            0
        } else {
            (mag.log2().floor() as u32) + 1
        }
    }

    /// Suggest a minimal format with the given fractional precision: signed iff any
    /// sample was negative, integer bits from [`Self::required_int_bits`].
    pub fn suggest_format(&self, frac_bits: u32) -> Result<QFormat, FormatError> {
        if self.needs_sign() {
            QFormat::signed(self.required_int_bits(), frac_bits)
        } else {
            QFormat::unsigned(self.required_int_bits(), frac_bits)
        }
    }

    /// Merge another analysis into this one.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_range() {
        let r = RangeAnalysis::new();
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
        assert_eq!(r.required_int_bits(), 0);
        assert!(!r.needs_sign());
    }

    #[test]
    fn unit_interval_needs_no_int_bits() {
        let r = RangeAnalysis::of(&[0.1, 0.5, 0.999, -0.75]);
        assert_eq!(r.required_int_bits(), 0);
        assert!(r.needs_sign());
    }

    #[test]
    fn int_bits_grow_with_magnitude() {
        assert_eq!(RangeAnalysis::of(&[1.0]).required_int_bits(), 1);
        assert_eq!(RangeAnalysis::of(&[1.99]).required_int_bits(), 1);
        assert_eq!(RangeAnalysis::of(&[2.0]).required_int_bits(), 2);
        assert_eq!(RangeAnalysis::of(&[255.0]).required_int_bits(), 8);
        assert_eq!(RangeAnalysis::of(&[256.0]).required_int_bits(), 9);
    }

    #[test]
    fn exact_negative_power_of_two_fits_signed() {
        // A Q2.x signed format reaches down to exactly -4.0.
        let r = RangeAnalysis::of(&[-4.0, 3.0]);
        assert_eq!(r.required_int_bits(), 2);
        let fmt = r.suggest_format(4).unwrap();
        assert!(fmt.is_signed());
        assert!(fmt.contains(-4.0));
        assert!(fmt.contains(3.0));
    }

    #[test]
    fn suggest_format_unsigned_when_nonnegative() {
        let r = RangeAnalysis::of(&[0.0, 3.5]);
        let fmt = r.suggest_format(8).unwrap();
        assert!(!fmt.is_signed());
        assert_eq!(fmt.int_bits(), 2);
        assert!(fmt.contains(3.5));
    }

    #[test]
    fn suggested_format_always_contains_observed_range() {
        let data = [-7.3, 2.1, 0.0, 5.9, -0.001];
        let r = RangeAnalysis::of(&data);
        let fmt = r.suggest_format(10).unwrap();
        for v in data {
            assert!(fmt.contains(v), "{v} not contained in {fmt}");
        }
    }

    #[test]
    fn non_finite_ignored() {
        let r = RangeAnalysis::of(&[f64::NAN, f64::INFINITY, 1.0]);
        assert_eq!(r.count(), 1);
        assert_eq!(r.max(), Some(1.0));
    }

    #[test]
    fn merge_matches_combined() {
        let a = RangeAnalysis::of(&[1.0, -2.0]);
        let b = RangeAnalysis::of(&[5.0]);
        let mut m = a;
        m.merge(&b);
        let combined = RangeAnalysis::of(&[1.0, -2.0, 5.0]);
        assert_eq!(m.min(), combined.min());
        assert_eq!(m.max(), combined.max());
        assert_eq!(m.count(), combined.count());
    }
}
