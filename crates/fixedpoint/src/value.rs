//! Fixed-point values and arithmetic.

use crate::format::{Overflow, QFormat, Rounding};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A fixed-point value: a raw integer plus the [`QFormat`] that interprets it.
///
/// Arithmetic requires both operands to share a format (mixed-format arithmetic in
/// hardware inserts explicit alignment shifts; model those with [`Fx::requantize`]).
/// All operations take an explicit [`Overflow`] policy so a design can be audited
/// under both saturating and wrapping assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fx {
    raw: i64,
    fmt: QFormat,
}

impl Fx {
    /// The zero value in `fmt`.
    pub fn zero(fmt: QFormat) -> Self {
        Self { raw: 0, fmt }
    }

    /// Construct from a raw integer, fitted to `fmt` under `policy`.
    pub fn from_raw(raw: i64, fmt: QFormat, policy: Overflow) -> Self {
        Self {
            raw: fmt.fit_raw(raw, policy),
            fmt,
        }
    }

    /// Quantize an `f64` into `fmt`.
    ///
    /// Non-finite inputs saturate to the nearest extreme (NaN maps to zero), since
    /// hardware datapaths have no NaN representation.
    pub fn from_f64(value: f64, fmt: QFormat, rounding: Rounding, policy: Overflow) -> Self {
        if value.is_nan() {
            return Self::zero(fmt);
        }
        if value.is_infinite() {
            let raw = if value > 0.0 {
                fmt.raw_max()
            } else {
                fmt.raw_min()
            };
            return Self { raw, fmt };
        }
        let scaled = value * (2.0f64).powi(fmt.frac_bits() as i32);
        let rounded = match rounding {
            Rounding::Nearest => {
                // Ties away from zero, matching `f64::round`.
                scaled.round()
            }
            Rounding::Floor => scaled.floor(),
            Rounding::TowardZero => scaled.trunc(),
            Rounding::Ceil => scaled.ceil(),
        };
        // Clamp before the i64 cast: f64 values beyond i64 range are UB-free with
        // `as` (they saturate), but be explicit.
        let raw = if rounded >= i64::MAX as f64 {
            i64::MAX
        } else if rounded <= i64::MIN as f64 {
            i64::MIN
        } else {
            rounded as i64
        };
        Self::from_raw(raw, fmt, policy)
    }

    /// The raw integer representation.
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The format of this value.
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// The real value this fixed-point number represents (exact: every raw value
    /// up to 63 bits converts to `f64` with at most one rounding).
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * self.fmt.ulp()
    }

    /// Saturating/wrapping addition. Panics if formats differ.
    pub fn add(self, rhs: Self, policy: Overflow) -> Self {
        self.check_format(rhs, "add");
        // i64 + i64 of ≤63-bit operands cannot overflow i64's 64-bit range only if
        // both fit in 63 bits; use i128 to be exact, then fit.
        let sum = self.raw as i128 + rhs.raw as i128;
        Self::from_raw(clamp_i128(sum), self.fmt, policy)
    }

    /// Saturating/wrapping subtraction. Panics if formats differ.
    pub fn sub(self, rhs: Self, policy: Overflow) -> Self {
        self.check_format(rhs, "sub");
        let diff = self.raw as i128 - rhs.raw as i128;
        Self::from_raw(clamp_i128(diff), self.fmt, policy)
    }

    /// Fixed-point multiplication with the product requantized back into the
    /// operand format: `(a*b) >> frac_bits`, rounded per `rounding`.
    ///
    /// This models the common FPGA datapath where a full-width product feeds a
    /// shifter that renormalizes into the working format.
    pub fn mul(self, rhs: Self, rounding: Rounding, policy: Overflow) -> Self {
        self.check_format(rhs, "mul");
        let product = self.raw as i128 * rhs.raw as i128; // ≤126 bits: exact
        let raw = shift_round(product, self.fmt.frac_bits(), rounding);
        Self::from_raw(clamp_i128(raw), self.fmt, policy)
    }

    /// Multiply-accumulate: `self + a*b`, the fused MAC primitive the paper's PDF
    /// pipelines map onto Xilinx 18x18 MAC blocks.
    pub fn mac(self, a: Self, b: Self, rounding: Rounding, policy: Overflow) -> Self {
        self.check_format(a, "mac");
        let product = a.raw as i128 * b.raw as i128;
        let prod_raw = shift_round(product, self.fmt.frac_bits(), rounding);
        Self::from_raw(clamp_i128(self.raw as i128 + prod_raw), self.fmt, policy)
    }

    /// Negation under `policy` (the minimum signed raw value saturates or wraps).
    pub fn neg(self, policy: Overflow) -> Self {
        Self::from_raw(clamp_i128(-(self.raw as i128)), self.fmt, policy)
    }

    /// Absolute value under `policy`.
    pub fn abs(self, policy: Overflow) -> Self {
        if self.raw < 0 {
            self.neg(policy)
        } else {
            self
        }
    }

    /// Convert this value into another format, re-rounding and re-fitting.
    pub fn requantize(self, fmt: QFormat, rounding: Rounding, policy: Overflow) -> Self {
        let from = self.fmt.frac_bits();
        let to = fmt.frac_bits();
        let raw = if to >= from {
            // Gaining fractional bits is exact while it fits in i128.
            (self.raw as i128) << (to - from)
        } else {
            shift_round(self.raw as i128, from - to, rounding)
        };
        Self::from_raw(clamp_i128(raw), fmt, policy)
    }

    /// Quantization error committed by representing `value` in `fmt`:
    /// `|value - quantized|`.
    pub fn quantization_error(value: f64, fmt: QFormat, rounding: Rounding) -> f64 {
        (value - Self::from_f64(value, fmt, rounding, Overflow::Saturate).to_f64()).abs()
    }

    fn check_format(&self, rhs: Self, op: &str) {
        assert_eq!(
            self.fmt, rhs.fmt,
            "fixed-point {op}: operand formats differ ({} vs {}); requantize first",
            self.fmt, rhs.fmt
        );
    }
}

impl PartialOrd for Fx {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.fmt == other.fmt {
            Some(self.raw.cmp(&other.raw))
        } else {
            self.to_f64().partial_cmp(&other.to_f64())
        }
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.fmt)
    }
}

/// Clamp an i128 into i64 range (values this large always saturate/wrap at the
/// format level anyway; the i64 clamp just avoids an intermediate overflow).
fn clamp_i128(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// Arithmetic right shift by `bits` with explicit rounding of the dropped bits.
fn shift_round(v: i128, bits: u32, rounding: Rounding) -> i128 {
    if bits == 0 {
        return v;
    }
    let floor = v >> bits;
    let rem = v - (floor << bits); // in [0, 2^bits)
    if rem == 0 {
        return floor;
    }
    let half = 1i128 << (bits - 1);
    match rounding {
        Rounding::Floor => floor,
        Rounding::Ceil => floor + 1,
        Rounding::TowardZero => {
            if v < 0 {
                floor + 1
            } else {
                floor
            }
        }
        Rounding::Nearest => {
            // Ties away from zero.
            match rem.cmp(&half) {
                Ordering::Less => floor,
                Ordering::Greater => floor + 1,
                Ordering::Equal => {
                    if v >= 0 {
                        floor + 1
                    } else {
                        floor
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32, f: u32) -> QFormat {
        QFormat::signed(i, f).unwrap()
    }

    #[test]
    fn f64_round_trip_exact_values() {
        let fmt = q(3, 8);
        for v in [-8.0, -1.5, 0.0, 0.25, 3.125, 7.99609375] {
            let fx = Fx::from_f64(v, fmt, Rounding::Nearest, Overflow::Saturate);
            assert_eq!(fx.to_f64(), v, "value {v} should be exactly representable");
        }
    }

    #[test]
    fn quantization_rounds_to_nearest() {
        let fmt = q(3, 2); // ulp = 0.25
        let fx = Fx::from_f64(1.1, fmt, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(fx.to_f64(), 1.0);
        let fx = Fx::from_f64(1.13, fmt, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(fx.to_f64(), 1.25);
    }

    #[test]
    fn quantization_floor_vs_ceil() {
        let fmt = q(3, 2);
        assert_eq!(
            Fx::from_f64(1.1, fmt, Rounding::Floor, Overflow::Saturate).to_f64(),
            1.0
        );
        assert_eq!(
            Fx::from_f64(1.1, fmt, Rounding::Ceil, Overflow::Saturate).to_f64(),
            1.25
        );
        assert_eq!(
            Fx::from_f64(-1.1, fmt, Rounding::Floor, Overflow::Saturate).to_f64(),
            -1.25
        );
        assert_eq!(
            Fx::from_f64(-1.1, fmt, Rounding::TowardZero, Overflow::Saturate).to_f64(),
            -1.0
        );
    }

    #[test]
    fn saturation_on_conversion() {
        let fmt = q(1, 2); // range [-2, 1.75]
        assert_eq!(
            Fx::from_f64(5.0, fmt, Rounding::Nearest, Overflow::Saturate).to_f64(),
            1.75
        );
        assert_eq!(
            Fx::from_f64(-5.0, fmt, Rounding::Nearest, Overflow::Saturate).to_f64(),
            -2.0
        );
    }

    #[test]
    fn nan_and_infinities() {
        let fmt = q(1, 2);
        assert_eq!(
            Fx::from_f64(f64::NAN, fmt, Rounding::Nearest, Overflow::Saturate).to_f64(),
            0.0
        );
        assert_eq!(
            Fx::from_f64(f64::INFINITY, fmt, Rounding::Nearest, Overflow::Saturate).to_f64(),
            fmt.max_value()
        );
        assert_eq!(
            Fx::from_f64(
                f64::NEG_INFINITY,
                fmt,
                Rounding::Nearest,
                Overflow::Saturate
            )
            .to_f64(),
            fmt.min_value()
        );
    }

    #[test]
    fn add_sub_exact_within_range() {
        let fmt = q(3, 4);
        let a = Fx::from_f64(1.5, fmt, Rounding::Nearest, Overflow::Saturate);
        let b = Fx::from_f64(2.25, fmt, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(a.add(b, Overflow::Saturate).to_f64(), 3.75);
        assert_eq!(a.sub(b, Overflow::Saturate).to_f64(), -0.75);
    }

    #[test]
    fn add_saturates() {
        let fmt = q(1, 2); // max 1.75
        let a = Fx::from_f64(1.5, fmt, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(a.add(a, Overflow::Saturate).to_f64(), 1.75);
    }

    #[test]
    fn add_wraps() {
        let fmt = q(1, 2); // raw range [-8,7], span 16
        let a = Fx::from_f64(1.5, fmt, Rounding::Nearest, Overflow::Wrap); // raw 6
        let wrapped = a.add(a, Overflow::Wrap); // raw 12 -> -4
        assert_eq!(wrapped.raw(), -4);
        assert_eq!(wrapped.to_f64(), -1.0);
    }

    #[test]
    fn mul_requantizes_product() {
        let fmt = q(3, 4);
        let a = Fx::from_f64(1.5, fmt, Rounding::Nearest, Overflow::Saturate);
        let b = Fx::from_f64(2.5, fmt, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(
            a.mul(b, Rounding::Nearest, Overflow::Saturate).to_f64(),
            3.75
        );
    }

    #[test]
    fn mul_rounding_error_bounded_by_half_ulp() {
        let fmt = q(0, 7);
        let a = Fx::from_f64(0.3, fmt, Rounding::Nearest, Overflow::Saturate);
        let b = Fx::from_f64(0.7, fmt, Rounding::Nearest, Overflow::Saturate);
        let exact = a.to_f64() * b.to_f64();
        let got = a.mul(b, Rounding::Nearest, Overflow::Saturate).to_f64();
        assert!((exact - got).abs() <= fmt.ulp() / 2.0 + 1e-12);
    }

    #[test]
    fn mac_matches_mul_then_add() {
        let fmt = q(4, 8);
        let acc = Fx::from_f64(1.0, fmt, Rounding::Nearest, Overflow::Saturate);
        let a = Fx::from_f64(0.5, fmt, Rounding::Nearest, Overflow::Saturate);
        let b = Fx::from_f64(3.25, fmt, Rounding::Nearest, Overflow::Saturate);
        let via_mac = acc.mac(a, b, Rounding::Nearest, Overflow::Saturate);
        let via_two = acc.add(
            a.mul(b, Rounding::Nearest, Overflow::Saturate),
            Overflow::Saturate,
        );
        assert_eq!(via_mac, via_two);
    }

    #[test]
    fn neg_saturates_minimum() {
        let fmt = q(1, 2);
        let min = Fx::from_f64(-2.0, fmt, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(min.neg(Overflow::Saturate).to_f64(), 1.75);
        assert_eq!(min.neg(Overflow::Wrap).to_f64(), -2.0); // wraps back to itself
    }

    #[test]
    fn requantize_narrower_rounds() {
        let wide = q(3, 8);
        let narrow = q(3, 2);
        let v = Fx::from_f64(1.1015625, wide, Rounding::Nearest, Overflow::Saturate);
        let r = v.requantize(narrow, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(r.to_f64(), 1.0);
    }

    #[test]
    fn requantize_wider_is_exact() {
        let narrow = q(3, 2);
        let wide = q(3, 10);
        let v = Fx::from_f64(1.25, narrow, Rounding::Nearest, Overflow::Saturate);
        let r = v.requantize(wide, Rounding::Nearest, Overflow::Saturate);
        assert_eq!(r.to_f64(), 1.25);
        assert_eq!(r.format(), wide);
    }

    #[test]
    #[should_panic(expected = "operand formats differ")]
    fn mixed_format_add_panics() {
        let a = Fx::zero(q(1, 2));
        let b = Fx::zero(q(1, 3));
        let _ = a.add(b, Overflow::Saturate);
    }

    #[test]
    fn ordering_same_format() {
        let fmt = q(3, 4);
        let a = Fx::from_f64(1.0, fmt, Rounding::Nearest, Overflow::Saturate);
        let b = Fx::from_f64(2.0, fmt, Rounding::Nearest, Overflow::Saturate);
        assert!(a < b);
    }

    #[test]
    fn shift_round_negative_ties() {
        // -1.5 at 1 fractional bit, dropping that bit with Nearest:
        // ties away from zero -> -2.
        assert_eq!(shift_round(-3, 1, Rounding::Nearest), -2);
        assert_eq!(shift_round(3, 1, Rounding::Nearest), 2);
        assert_eq!(shift_round(-3, 1, Rounding::Floor), -2);
        assert_eq!(shift_round(-3, 1, Rounding::Ceil), -1);
        assert_eq!(shift_round(-3, 1, Rounding::TowardZero), -1);
    }
}
