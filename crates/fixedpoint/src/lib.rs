//! Runtime-parameterized fixed-point arithmetic for FPGA design-space exploration.
//!
//! FPGA datapaths use custom bit-widths: an 18-bit fixed-point multiply maps onto a
//! single Xilinx 18x18 MAC, while 32-bit needs two. Choosing the narrowest format
//! that stays within an application's error tolerance is the essence of the RAT
//! numerical-precision test (Holland et al., HPRCTA'07, §3.2). This crate provides:
//!
//! - [`QFormat`]: a signed/unsigned Q-number format with configurable integer and
//!   fractional bit counts (up to 63 total bits),
//! - [`Fx`]: a fixed-point value carrying its format, with saturating/wrapping
//!   arithmetic and explicit rounding,
//! - [`error::ErrorStats`]: error accumulation against a reference computation
//!   (max absolute/relative error, RMS, SNR),
//! - [`range::RangeAnalysis`]: dynamic-range scan of sample data to size the
//!   integer field,
//! - [`search`]: minimal-bit-width search under an error tolerance, the
//!   automated analogue of the paper's "18-bit fixed point had only ~2% max
//!   error" design decision.
//!
//! # Example
//!
//! ```
//! use fixedpoint::{QFormat, Fx, Rounding, Overflow};
//!
//! // Q1.17 in 18 bits, the format the paper's PDF kernel uses.
//! let fmt = QFormat::signed(0, 17).unwrap();
//! let a = Fx::from_f64(0.25, fmt, Rounding::Nearest, Overflow::Saturate);
//! let b = Fx::from_f64(0.50, fmt, Rounding::Nearest, Overflow::Saturate);
//! let sum = a.add(b, Overflow::Saturate);
//! assert_eq!(sum.to_f64(), 0.75);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod float;
pub mod format;
pub mod range;
pub mod search;
pub mod value;

pub use error::ErrorStats;
pub use float::MiniFloat;
pub use format::{Overflow, QFormat, Rounding};
pub use range::RangeAnalysis;
pub use value::Fx;
