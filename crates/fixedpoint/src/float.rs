//! Reduced-precision floating-point formats.
//!
//! The paper's PDF case study weighed "18-bit and 32-bit fixed point along
//! with 32-bit floating point" (§4.2). FPGA designs also use custom float
//! widths between those extremes. [`MiniFloat`] models an IEEE-754-style
//! format with arbitrary exponent and mantissa widths by quantizing `f64`
//! values: round the significand to the target mantissa width, clamp the
//! exponent to the target range (with gradual underflow to subnormals). This
//! is exact for every format whose widths are at most `f64`'s own.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A custom floating-point format: sign bit + `exp_bits` exponent +
/// `mant_bits` explicit mantissa bits.
///
/// `MiniFloat::new(8, 23)` is IEEE binary32; `MiniFloat::new(5, 10)` is
/// binary16; `MiniFloat::new(8, 7)` is bfloat16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MiniFloat {
    exp_bits: u32,
    mant_bits: u32,
}

impl MiniFloat {
    /// Construct a format. Panics unless `1 <= exp_bits <= 11` and
    /// `1 <= mant_bits <= 52` (the ranges representable through `f64`).
    pub fn new(exp_bits: u32, mant_bits: u32) -> Self {
        assert!(
            (1..=11).contains(&exp_bits),
            "exp_bits must be in 1..=11, got {exp_bits}"
        );
        assert!(
            (1..=52).contains(&mant_bits),
            "mant_bits must be in 1..=52, got {mant_bits}"
        );
        Self {
            exp_bits,
            mant_bits,
        }
    }

    /// IEEE-754 binary32 (the paper's "32-bit floating point" candidate).
    pub fn binary32() -> Self {
        Self::new(8, 23)
    }

    /// IEEE-754 binary16.
    pub fn binary16() -> Self {
        Self::new(5, 10)
    }

    /// bfloat16.
    pub fn bfloat16() -> Self {
        Self::new(8, 7)
    }

    /// Exponent field width.
    pub fn exp_bits(&self) -> u32 {
        self.exp_bits
    }

    /// Explicit mantissa width.
    pub fn mant_bits(&self) -> u32 {
        self.mant_bits
    }

    /// Total storage width: sign + exponent + mantissa.
    pub fn total_bits(&self) -> u32 {
        1 + self.exp_bits + self.mant_bits
    }

    /// Exponent bias.
    fn bias(&self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// Largest finite value.
    pub fn max_value(&self) -> f64 {
        let emax = self.bias();
        // (2 - 2^-mant) * 2^emax
        (2.0 - (2.0f64).powi(-(self.mant_bits as i32))) * (2.0f64).powi(emax)
    }

    /// Smallest positive normal value.
    pub fn min_positive_normal(&self) -> f64 {
        (2.0f64).powi(1 - self.bias())
    }

    /// Quantize `v` to this format (round to nearest even, gradual underflow,
    /// overflow to infinity — the IEEE defaults hardware float cores follow).
    pub fn quantize(&self, v: f64) -> f64 {
        if v.is_nan() || v == 0.0 {
            return v;
        }
        if v.is_infinite() {
            return v;
        }
        let sign = v.signum();
        let mag = v.abs();
        let emin = 1 - self.bias(); // smallest normal exponent
        let exp = mag.log2().floor() as i32;
        // Effective mantissa resolution: subnormals lose bits below emin.
        let quantum_exp = (exp.max(emin)) - self.mant_bits as i32;
        let quantum = (2.0f64).powi(quantum_exp);
        let rounded = (mag / quantum).round_ties_even() * quantum;
        if rounded > self.max_value() {
            return sign * f64::INFINITY;
        }
        sign * rounded
    }

    /// Quantization relative error bound for normal values: half a unit in
    /// the last place, `2^-(mant_bits+1)`.
    pub fn rel_error_bound(&self) -> f64 {
        (2.0f64).powi(-(self.mant_bits as i32 + 1))
    }
}

impl fmt::Display for MiniFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fp{}(e{}m{})",
            self.total_bits(),
            self.exp_bits,
            self.mant_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary32_round_trips_f32_values() {
        let fmt = MiniFloat::binary32();
        for v in [1.0f32, -0.375, std::f32::consts::PI, 1e-20, 6.5e37] {
            let q = fmt.quantize(v as f64);
            assert_eq!(
                q as f32, v,
                "binary32 quantization should match f32 for {v}"
            );
        }
    }

    #[test]
    fn quantization_error_within_half_ulp_for_normals() {
        let fmt = MiniFloat::binary16();
        for i in 1..1000 {
            let v = i as f64 * 0.00317;
            if v < fmt.min_positive_normal() {
                continue;
            }
            let q = fmt.quantize(v);
            assert!(
                ((q - v) / v).abs() <= fmt.rel_error_bound() * (1.0 + 1e-12),
                "v={v}, q={q}"
            );
        }
    }

    #[test]
    fn overflow_goes_to_infinity() {
        let fmt = MiniFloat::binary16(); // max ~65504
        assert_eq!(fmt.quantize(1e6), f64::INFINITY);
        assert_eq!(fmt.quantize(-1e6), f64::NEG_INFINITY);
        assert!((fmt.max_value() - 65504.0).abs() < 1.0);
    }

    #[test]
    fn subnormals_lose_precision_gradually() {
        let fmt = MiniFloat::binary16();
        let tiny = fmt.min_positive_normal() / 4.0;
        let q = fmt.quantize(tiny);
        // Representable as a subnormal, but with reduced resolution.
        assert!(q > 0.0);
        let rel = ((q - tiny) / tiny).abs();
        assert!(
            rel <= 0.25,
            "subnormal error should stay bounded, got {rel}"
        );
    }

    #[test]
    fn bfloat_is_coarser_than_binary16_in_mantissa() {
        let bf = MiniFloat::bfloat16();
        let f16 = MiniFloat::binary16();
        assert!(bf.rel_error_bound() > f16.rel_error_bound());
        assert!(bf.max_value() > f16.max_value()); // but wider range
    }

    #[test]
    fn zero_nan_inf_pass_through() {
        let fmt = MiniFloat::binary16();
        assert_eq!(fmt.quantize(0.0), 0.0);
        assert!(fmt.quantize(f64::NAN).is_nan());
        assert_eq!(fmt.quantize(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn display_shows_layout() {
        assert_eq!(MiniFloat::binary32().to_string(), "fp32(e8m23)");
        assert_eq!(MiniFloat::bfloat16().to_string(), "fp16(e8m7)");
    }

    #[test]
    #[should_panic(expected = "exp_bits")]
    fn oversized_exponent_panics() {
        MiniFloat::new(12, 10);
    }

    #[test]
    fn widths_accessors() {
        let f = MiniFloat::new(6, 17);
        assert_eq!(f.total_bits(), 24);
        assert_eq!(f.exp_bits(), 6);
        assert_eq!(f.mant_bits(), 17);
    }
}
