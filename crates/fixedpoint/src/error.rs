//! Error statistics for quantized computations.
//!
//! The RAT precision test asks: "is the chosen format's error within tolerance?"
//! [`ErrorStats`] accumulates reference-vs-quantized sample pairs and reports the
//! metrics the paper quotes (the PDF case study kept "maximum error percentage"
//! around 2% for 18-bit fixed point).

use serde::{Deserialize, Serialize};

/// Accumulated error metrics between a reference (`f64`) computation and its
/// quantized counterpart.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    count: u64,
    max_abs: f64,
    max_rel: f64,
    sum_sq_err: f64,
    sum_sq_ref: f64,
    sum_abs: f64,
}

impl ErrorStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `(reference, quantized)` sample pair.
    pub fn record(&mut self, reference: f64, quantized: f64) {
        let err = (reference - quantized).abs();
        self.count += 1;
        self.max_abs = self.max_abs.max(err);
        if reference != 0.0 {
            self.max_rel = self.max_rel.max(err / reference.abs());
        }
        self.sum_sq_err += err * err;
        self.sum_sq_ref += reference * reference;
        self.sum_abs += err;
    }

    /// Record every aligned pair from two slices. Panics on length mismatch.
    pub fn record_all(&mut self, reference: &[f64], quantized: &[f64]) {
        assert_eq!(
            reference.len(),
            quantized.len(),
            "reference and quantized sample counts differ"
        );
        for (&r, &q) in reference.iter().zip(quantized) {
            self.record(r, q);
        }
    }

    /// Build stats from two aligned slices.
    pub fn between(reference: &[f64], quantized: &[f64]) -> Self {
        let mut s = Self::new();
        s.record_all(reference, quantized);
        s
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest absolute error seen.
    pub fn max_abs_error(&self) -> f64 {
        self.max_abs
    }

    /// Largest relative error seen (samples with a zero reference are skipped).
    pub fn max_rel_error(&self) -> f64 {
        self.max_rel
    }

    /// Mean absolute error.
    pub fn mean_abs_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs / self.count as f64
        }
    }

    /// Root-mean-square error.
    pub fn rms_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_sq_err / self.count as f64).sqrt()
        }
    }

    /// Signal-to-noise ratio in dB: `10·log10(Σref² / Σerr²)`.
    ///
    /// Returns `f64::INFINITY` when the error is exactly zero.
    pub fn snr_db(&self) -> f64 {
        if self.sum_sq_err == 0.0 {
            f64::INFINITY
        } else if self.sum_sq_ref == 0.0 {
            f64::NEG_INFINITY
        } else {
            10.0 * (self.sum_sq_ref / self.sum_sq_err).log10()
        }
    }

    /// Whether the maximum relative error is within `tolerance`
    /// (e.g. `0.02` for the paper's ~2% criterion).
    pub fn within_rel_tolerance(&self, tolerance: f64) -> bool {
        self.max_rel <= tolerance
    }

    /// Whether the maximum absolute error is within `tolerance`.
    pub fn within_abs_tolerance(&self, tolerance: f64) -> bool {
        self.max_abs <= tolerance
    }

    /// Merge another accumulator into this one (useful for parallel evaluation).
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.max_abs = self.max_abs.max(other.max_abs);
        self.max_rel = self.max_rel.max(other.max_rel);
        self.sum_sq_err += other.sum_sq_err;
        self.sum_sq_ref += other.sum_sq_ref;
        self.sum_abs += other.sum_abs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = ErrorStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.max_abs_error(), 0.0);
        assert_eq!(s.rms_error(), 0.0);
        assert_eq!(s.mean_abs_error(), 0.0);
        assert_eq!(s.snr_db(), f64::INFINITY);
    }

    #[test]
    fn single_sample_metrics() {
        let mut s = ErrorStats::new();
        s.record(2.0, 1.9);
        assert!((s.max_abs_error() - 0.1).abs() < 1e-12);
        assert!((s.max_rel_error() - 0.05).abs() < 1e-12);
        assert!((s.rms_error() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_reference_skips_relative() {
        let mut s = ErrorStats::new();
        s.record(0.0, 0.5);
        assert_eq!(s.max_rel_error(), 0.0);
        assert_eq!(s.max_abs_error(), 0.5);
    }

    #[test]
    fn tolerance_checks() {
        let s = ErrorStats::between(&[1.0, 2.0], &[0.99, 2.01]);
        assert!(s.within_rel_tolerance(0.02));
        assert!(!s.within_rel_tolerance(0.001));
        assert!(s.within_abs_tolerance(0.011));
        assert!(!s.within_abs_tolerance(0.005));
    }

    #[test]
    fn snr_improves_with_smaller_error() {
        let noisy = ErrorStats::between(&[1.0; 100], &[0.9; 100]);
        let clean = ErrorStats::between(&[1.0; 100], &[0.999; 100]);
        assert!(clean.snr_db() > noisy.snr_db());
    }

    #[test]
    fn merge_equals_sequential() {
        let refs = [1.0, 2.0, 3.0, 4.0];
        let quants = [1.1, 1.9, 3.05, 3.9];
        let whole = ErrorStats::between(&refs, &quants);
        let mut a = ErrorStats::between(&refs[..2], &quants[..2]);
        let b = ErrorStats::between(&refs[2..], &quants[2..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.max_abs_error() - whole.max_abs_error()).abs() < 1e-15);
        assert!((a.rms_error() - whole.rms_error()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sample counts differ")]
    fn mismatched_lengths_panic() {
        let mut s = ErrorStats::new();
        s.record_all(&[1.0], &[1.0, 2.0]);
    }
}
