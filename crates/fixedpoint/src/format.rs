//! Q-number format descriptions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum total width (sign + integer + fractional bits) supported by [`QFormat`].
///
/// Raw values are stored in `i64`; 63 data bits plus sign is the widest that fits.
pub const MAX_TOTAL_BITS: u32 = 63;

/// A fixed-point number format: `Q<int_bits>.<frac_bits>`, optionally signed.
///
/// The representable value of a raw integer `r` is `r / 2^frac_bits`. For a signed
/// format the total width is `1 + int_bits + frac_bits` (one sign bit); for an
/// unsigned format it is `int_bits + frac_bits`.
///
/// `QFormat::signed(0, 17)` is the 18-bit format the RAT paper's PDF estimation
/// kernel uses (one sign bit, 17 fractional bits, values in `[-1, 1)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    signed: bool,
    int_bits: u32,
    frac_bits: u32,
}

/// Rounding mode applied when a value is quantized to fewer fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Rounding {
    /// Round to the nearest representable value; ties away from zero.
    ///
    /// This is the default because it halves the worst-case quantization error
    /// relative to truncation (ULP/2 instead of ULP).
    #[default]
    Nearest,
    /// Round toward negative infinity (drop the extra bits). This is what a bare
    /// right-shift does in hardware and is the cheapest option in logic.
    Floor,
    /// Round toward zero.
    TowardZero,
    /// Round toward positive infinity.
    Ceil,
}

/// Overflow policy applied when a value exceeds the format's range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Overflow {
    /// Clamp to the nearest representable extreme. Typical for DSP datapaths.
    #[default]
    Saturate,
    /// Two's-complement wraparound, as unguarded hardware adders do.
    Wrap,
}

/// Error returned when constructing an invalid [`QFormat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError(String);

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fixed-point format: {}", self.0)
    }
}

impl std::error::Error for FormatError {}

impl QFormat {
    /// A signed format with `int_bits` integer bits and `frac_bits` fractional bits
    /// (plus an implicit sign bit).
    pub fn signed(int_bits: u32, frac_bits: u32) -> Result<Self, FormatError> {
        Self::new(true, int_bits, frac_bits)
    }

    /// An unsigned format with `int_bits` integer bits and `frac_bits` fractional bits.
    pub fn unsigned(int_bits: u32, frac_bits: u32) -> Result<Self, FormatError> {
        Self::new(false, int_bits, frac_bits)
    }

    fn new(signed: bool, int_bits: u32, frac_bits: u32) -> Result<Self, FormatError> {
        let data_bits = int_bits
            .checked_add(frac_bits)
            .ok_or_else(|| FormatError("bit counts overflow".into()))?;
        let total = data_bits + u32::from(signed);
        if total == 0 {
            return Err(FormatError("zero-width format".into()));
        }
        if total > MAX_TOTAL_BITS {
            return Err(FormatError(format!(
                "total width {total} exceeds the supported maximum of {MAX_TOTAL_BITS} bits"
            )));
        }
        Ok(Self {
            signed,
            int_bits,
            frac_bits,
        })
    }

    /// Whether the format has a sign bit.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Number of integer bits (excluding any sign bit).
    pub fn int_bits(&self) -> u32 {
        self.int_bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Total storage width in bits, including the sign bit if signed.
    pub fn total_bits(&self) -> u32 {
        self.int_bits + self.frac_bits + u32::from(self.signed)
    }

    /// The smallest raw value representable in this format.
    pub fn raw_min(&self) -> i64 {
        if self.signed {
            -(1i64 << (self.int_bits + self.frac_bits))
        } else {
            0
        }
    }

    /// The largest raw value representable in this format.
    pub fn raw_max(&self) -> i64 {
        let data_bits = self.int_bits + self.frac_bits;
        if data_bits == 63 {
            i64::MAX
        } else {
            (1i64 << data_bits) - 1
        }
    }

    /// The smallest representable real value.
    pub fn min_value(&self) -> f64 {
        self.raw_min() as f64 * self.ulp()
    }

    /// The largest representable real value.
    pub fn max_value(&self) -> f64 {
        self.raw_max() as f64 * self.ulp()
    }

    /// The value of one unit in the last place: `2^-frac_bits`.
    pub fn ulp(&self) -> f64 {
        (2.0f64).powi(-(self.frac_bits as i32))
    }

    /// Whether `value` lies within this format's representable range.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.min_value() && value <= self.max_value()
    }

    /// Clamp `raw` into the format's raw range (saturation) or wrap it
    /// (two's-complement), per `policy`.
    pub(crate) fn fit_raw(&self, raw: i64, policy: Overflow) -> i64 {
        let (lo, hi) = (self.raw_min(), self.raw_max());
        if raw >= lo && raw <= hi {
            return raw;
        }
        match policy {
            Overflow::Saturate => raw.clamp(lo, hi),
            Overflow::Wrap => {
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (raw as i128 - lo as i128).rem_euclid(span);
                (lo as i128 + off) as i64
            }
        }
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = if self.signed { "Q" } else { "UQ" };
        write!(f, "{prefix}{}.{}", self.int_bits, self.frac_bits)
    }
}

impl std::str::FromStr for QFormat {
    type Err = FormatError;

    /// Parse the `Display` notation: `Q<int>.<frac>` (signed) or
    /// `UQ<int>.<frac>` (unsigned), e.g. `Q0.17`, `UQ8.0`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (signed, rest) = if let Some(r) = s.strip_prefix("UQ") {
            (false, r)
        } else if let Some(r) = s.strip_prefix('Q') {
            (true, r)
        } else {
            return Err(FormatError(format!("'{s}' must start with Q or UQ")));
        };
        let (i, f) = rest
            .split_once('.')
            .ok_or_else(|| FormatError(format!("'{s}' needs an int.frac pair")))?;
        let int_bits: u32 = i
            .parse()
            .map_err(|e| FormatError(format!("bad integer bits in '{s}': {e}")))?;
        let frac_bits: u32 = f
            .parse()
            .map_err(|e| FormatError(format!("bad fractional bits in '{s}': {e}")))?;
        Self::new(signed, int_bits, frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_17_is_the_paper_pdf_format() {
        let fmt = QFormat::signed(0, 17).unwrap();
        assert_eq!(fmt.total_bits(), 18);
        assert_eq!(fmt.min_value(), -1.0);
        assert!(fmt.max_value() < 1.0);
        assert!((fmt.max_value() - (1.0 - fmt.ulp())).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(QFormat::signed(3, 4).unwrap().to_string(), "Q3.4");
        assert_eq!(QFormat::unsigned(8, 0).unwrap().to_string(), "UQ8.0");
    }

    #[test]
    fn rejects_zero_and_oversized_widths() {
        assert!(QFormat::unsigned(0, 0).is_err());
        assert!(QFormat::signed(0, 0).is_ok()); // sign bit alone: 1-bit format
        assert!(QFormat::signed(40, 23).is_err()); // 64 bits total
        assert!(QFormat::signed(40, 22).is_ok()); // 63 bits total
        assert!(QFormat::unsigned(63, 0).is_ok());
        assert!(QFormat::unsigned(64, 0).is_err());
    }

    #[test]
    fn raw_range_signed() {
        let fmt = QFormat::signed(1, 2).unwrap(); // 4-bit total
        assert_eq!(fmt.raw_min(), -8);
        assert_eq!(fmt.raw_max(), 7);
        assert_eq!(fmt.min_value(), -2.0);
        assert_eq!(fmt.max_value(), 1.75);
    }

    #[test]
    fn raw_range_unsigned() {
        let fmt = QFormat::unsigned(2, 2).unwrap();
        assert_eq!(fmt.raw_min(), 0);
        assert_eq!(fmt.raw_max(), 15);
        assert_eq!(fmt.max_value(), 3.75);
    }

    #[test]
    fn fit_raw_saturates_at_both_ends() {
        let fmt = QFormat::signed(1, 2).unwrap();
        assert_eq!(fmt.fit_raw(100, Overflow::Saturate), 7);
        assert_eq!(fmt.fit_raw(-100, Overflow::Saturate), -8);
        assert_eq!(fmt.fit_raw(3, Overflow::Saturate), 3);
    }

    #[test]
    fn fit_raw_wraps_modularly() {
        let fmt = QFormat::signed(1, 2).unwrap(); // raw range [-8, 7], span 16
        assert_eq!(fmt.fit_raw(8, Overflow::Wrap), -8);
        assert_eq!(fmt.fit_raw(-9, Overflow::Wrap), 7);
        assert_eq!(fmt.fit_raw(23, Overflow::Wrap), 7);
        assert_eq!(fmt.fit_raw(24, Overflow::Wrap), -8);
    }

    #[test]
    fn ulp_halves_per_fractional_bit() {
        assert_eq!(QFormat::signed(0, 1).unwrap().ulp(), 0.5);
        assert_eq!(QFormat::signed(0, 10).unwrap().ulp(), 1.0 / 1024.0);
    }

    #[test]
    fn widest_format_raw_max() {
        let fmt = QFormat::unsigned(63, 0).unwrap();
        assert_eq!(fmt.raw_max(), i64::MAX);
    }

    #[test]
    fn parse_round_trips_display() {
        for fmt in [
            QFormat::signed(0, 17).unwrap(),
            QFormat::signed(3, 4).unwrap(),
            QFormat::unsigned(8, 0).unwrap(),
            QFormat::unsigned(0, 31).unwrap(),
        ] {
            let parsed: QFormat = fmt.to_string().parse().unwrap();
            assert_eq!(parsed, fmt);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("X0.17".parse::<QFormat>().is_err());
        assert!("Q017".parse::<QFormat>().is_err());
        assert!("Q0.abc".parse::<QFormat>().is_err());
        assert!("Q40.23".parse::<QFormat>().is_err()); // 64 bits total
        assert!("Qx.1".parse::<QFormat>().is_err());
    }
}
