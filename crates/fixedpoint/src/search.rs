//! Minimal-bit-width search under an error tolerance.
//!
//! The paper's PDF case study compared 18-bit fixed, 32-bit fixed, and 32-bit
//! float, settling on 18-bit fixed because its ~2% maximum error was acceptable
//! and a narrower format "would have achieved no appreciable resource savings".
//! This module automates that sweep: given a quantized evaluation of a workload
//! and a tolerance, find the narrowest fractional width that stays within it.

use crate::error::ErrorStats;
use crate::format::QFormat;

/// Result of a bit-width search: the chosen format plus the error at that width
/// and the full sweep for reporting.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Narrowest format meeting the tolerance.
    pub format: QFormat,
    /// Error statistics at the chosen width.
    pub stats: ErrorStats,
    /// `(frac_bits, max_rel_error)` for every width evaluated, widest first.
    pub sweep: Vec<(u32, f64)>,
}

/// Search for the minimal fractional width whose maximum *relative* error is
/// within `tolerance`.
///
/// `evaluate` runs the workload quantized to the candidate format and returns the
/// error statistics against the f64 reference. The search assumes error is
/// monotone non-increasing in fractional bits (true for well-conditioned
/// fixed-point datapaths) and verifies the assumption: every evaluated width is
/// recorded in [`SearchResult::sweep`] so a non-monotone workload is visible.
///
/// Integer bits and signedness are fixed by `base` (size them first with
/// [`crate::RangeAnalysis`]). Returns `None` if even `max_frac_bits` misses the
/// tolerance.
pub fn min_frac_bits<F>(
    base: QFormat,
    max_frac_bits: u32,
    tolerance: f64,
    mut evaluate: F,
) -> Option<SearchResult>
where
    F: FnMut(QFormat) -> ErrorStats,
{
    let make = |frac: u32| -> Option<QFormat> {
        if base.is_signed() {
            QFormat::signed(base.int_bits(), frac).ok()
        } else {
            QFormat::unsigned(base.int_bits(), frac).ok()
        }
    };

    // Check feasibility at the widest width first.
    let widest = make(max_frac_bits)?;
    let widest_stats = evaluate(widest);
    let mut sweep = vec![(max_frac_bits, widest_stats.max_rel_error())];
    if !widest_stats.within_rel_tolerance(tolerance) {
        return None;
    }

    // Binary search on fractional bits: find the smallest width meeting tolerance.
    let (mut lo, mut hi) = (0u32, max_frac_bits); // invariant: hi meets tolerance
    let mut best_stats = widest_stats;
    let mut best_fmt = widest;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let Some(fmt) = make(mid) else {
            lo = mid + 1;
            continue;
        };
        let stats = evaluate(fmt);
        sweep.push((mid, stats.max_rel_error()));
        if stats.within_rel_tolerance(tolerance) {
            hi = mid;
            best_stats = stats;
            best_fmt = fmt;
        } else {
            lo = mid + 1;
        }
    }
    sweep.sort_by_key(|&(bits, _)| std::cmp::Reverse(bits));
    Some(SearchResult {
        format: best_fmt,
        stats: best_stats,
        sweep,
    })
}

/// Exhaustive sweep of fractional widths `lo..=hi`, returning
/// `(frac_bits, ErrorStats)` per width. Useful for plotting error-vs-width
/// curves and for workloads where error is not monotone in width.
pub fn sweep_frac_bits<F>(
    base: QFormat,
    lo: u32,
    hi: u32,
    mut evaluate: F,
) -> Vec<(u32, ErrorStats)>
where
    F: FnMut(QFormat) -> ErrorStats,
{
    (lo..=hi)
        .filter_map(|frac| {
            let fmt = if base.is_signed() {
                QFormat::signed(base.int_bits(), frac).ok()?
            } else {
                QFormat::unsigned(base.int_bits(), frac).ok()?
            };
            Some((frac, evaluate(fmt)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Overflow, Rounding};
    use crate::value::Fx;

    /// Quantize a fixed dataset and measure error; error is monotone in width.
    fn quantize_dataset(fmt: QFormat) -> ErrorStats {
        let data: Vec<f64> = (0..200).map(|i| (i as f64) / 201.0 - 0.5).collect();
        let quantized: Vec<f64> = data
            .iter()
            .map(|&v| Fx::from_f64(v, fmt, Rounding::Nearest, Overflow::Saturate).to_f64())
            .collect();
        ErrorStats::between(&data, &quantized)
    }

    #[test]
    fn finds_minimal_width() {
        let base = QFormat::signed(0, 17).unwrap();
        let res = min_frac_bits(base, 30, 0.01, quantize_dataset).unwrap();
        // Verify minimality: chosen width passes, one bit narrower fails.
        let chosen = res.format.frac_bits();
        assert!(quantize_dataset(res.format).within_rel_tolerance(0.01));
        if chosen > 0 {
            let narrower = QFormat::signed(0, chosen - 1).unwrap();
            assert!(!quantize_dataset(narrower).within_rel_tolerance(0.01));
        }
    }

    #[test]
    fn infeasible_tolerance_returns_none() {
        let base = QFormat::signed(0, 4).unwrap();
        // 1e-30 relative tolerance is unreachable for irrational-ish samples.
        assert!(min_frac_bits(base, 20, 1e-30, quantize_dataset).is_none());
    }

    #[test]
    fn zero_tolerance_with_exactly_representable_data() {
        // Data representable exactly in 4 fractional bits.
        let eval = |fmt: QFormat| {
            let data = [0.25, 0.5, -0.0625];
            let q: Vec<f64> = data
                .iter()
                .map(|&v| Fx::from_f64(v, fmt, Rounding::Nearest, Overflow::Saturate).to_f64())
                .collect();
            ErrorStats::between(&data, &q)
        };
        let base = QFormat::signed(0, 10).unwrap();
        let res = min_frac_bits(base, 10, 0.0, eval).unwrap();
        assert_eq!(res.format.frac_bits(), 4);
    }

    #[test]
    fn sweep_covers_requested_range() {
        let base = QFormat::signed(0, 0).unwrap();
        let sweep = sweep_frac_bits(base, 2, 6, quantize_dataset);
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0].0, 2);
        assert_eq!(sweep[4].0, 6);
        // Error shrinks (weakly) as width grows.
        for w in sweep.windows(2) {
            assert!(w[1].1.max_abs_error() <= w[0].1.max_abs_error() + 1e-15);
        }
    }

    #[test]
    fn search_result_sweep_is_sorted_widest_first() {
        let base = QFormat::signed(0, 17).unwrap();
        let res = min_frac_bits(base, 24, 0.01, quantize_dataset).unwrap();
        for w in res.sweep.windows(2) {
            assert!(w[0].0 > w[1].0);
        }
    }
}
