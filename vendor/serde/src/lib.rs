//! Offline serde replacement built on an explicit [`Value`] tree.
//!
//! Upstream serde decouples data structures from formats through a visitor
//! protocol; the workspace only ever derives `Serialize`/`Deserialize` and
//! round-trips through TOML, so this stand-in collapses the protocol to two
//! calls: [`Serialize::to_value`] producing a [`Value`], and
//! [`Deserialize::from_value`] consuming one. The derive macro (in
//! `serde_derive`) generates exactly those, using serde's standard data-model
//! conventions:
//!
//! - structs → string-keyed maps in declaration order
//! - newtype structs → the inner value, transparently
//! - enums → externally tagged: unit variants as strings, newtype/struct
//!   variants as single-entry maps
//! - `Option` → value or absence (missing struct fields deserialize to
//!   `None`, as upstream)
//! - `#[serde(default)]` → `Default::default()` on absence
//! - unknown struct fields are ignored, as upstream's default

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    pub use crate::DeError as Error;
}

pub mod ser {
    /// Serialization in the value model cannot fail; the alias keeps
    /// `serde::ser::Error`-shaped code compiling.
    pub type Error = std::convert::Infallible;
}

/// The serde data model, reified.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit / nothing (`()`, unit structs).
    Unit,
    Bool(bool),
    /// All integers are carried as `i64`; the primitive impls range-check on
    /// the way out.
    Int(i64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// String-keyed map preserving insertion order (struct fields, tables).
    Map(Vec<(String, Value)>),
    /// `Option::None`. Formats without a null (TOML) omit the entry.
    None,
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "map",
            Value::None => "none",
        }
    }

    /// Look up a map entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a message plus a breadcrumb of field/variant names.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        DeError {
            msg: format!("expected {what}, found {}", got.type_name()),
        }
    }

    pub fn missing_field(field: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}`"),
        }
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError {
            msg: format!("unknown variant `{variant}` for enum {ty}"),
        }
    }

    /// Prefix the message with the field that failed, building a path.
    pub fn in_field(self, field: &str) -> Self {
        DeError {
            msg: format!("{field}: {}", self.msg),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Convert a value into the serde data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the serde data model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent. `Option` overrides this to yield
    /// `None`; everything else errors (mirroring upstream semantics).
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!(
                            "integer {i} out of range for {}", stringify!($t)))),
                    // Accept float-typed whole numbers: TOML writers often
                    // emit `n.0` for values a struct stores integrally.
                    Value::Float(f) if f.fract() == 0.0
                        && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
                    {
                        <$t>::try_from(*f as i64).map_err(|_| DeError::custom(format!(
                            "number {f} out of range for {}", stringify!($t))))
                    }
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, i8, i16, i32, i64, isize, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        // Preserve the full range by clamping through i64 bit-space only when
        // safe; values beyond i64::MAX are stored as their decimal string.
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::Str(self.to_string())
        }
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::Int(i) => Err(DeError::custom(format!("negative integer {i} for u64"))),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Ok(*f as u64)
            }
            Value::Str(s) => s
                .parse::<u64>()
                .map_err(|_| DeError::custom(format!("invalid u64 `{s}`"))),
            other => Err(DeError::expected("integer", other)),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Int(i) if *i >= 0 => Ok(*i as u128),
            Value::Str(s) => s
                .parse::<u128>()
                .map_err(|_| DeError::custom(format!("invalid u128 `{s}`"))),
            other => Err(DeError::expected("integer", other)),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError::expected("float", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Unit
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Unit => Ok(()),
            other => Err(DeError::expected("unit", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::None,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::None => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected {N} elements, got {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected tuple of {expected}, got {}", items.len())));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + std::fmt::Display, V: Serialize> Serialize
    for std::collections::BTreeMap<K, V>
{
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Derive-support helpers (named __private to signal "derive output only")
// ---------------------------------------------------------------------------

pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Fetch and deserialize a struct field; absence defers to
    /// [`Deserialize::from_missing`] (so `Option` yields `None`).
    pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, DeError> {
        match map.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v).map_err(|e| e.in_field(name)),
            None => T::from_missing(name),
        }
    }

    /// `#[serde(default)]` variant: absence yields `Default::default()`.
    pub fn field_or_default<T: Deserialize + Default>(
        map: &[(String, Value)],
        name: &str,
    ) -> Result<T, DeError> {
        match map.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v).map_err(|e| e.in_field(name)),
            None => Ok(T::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_field_absent_is_none() {
        let map: Vec<(String, Value)> = vec![];
        let got: Option<u64> = __private::field(&map, "missing").unwrap();
        assert_eq!(got, None);
        let err: Result<u64, _> = __private::field(&map, "missing");
        assert!(err.is_err());
    }

    #[test]
    fn ints_round_trip_and_coerce() {
        assert_eq!(u64::from_value(&Value::Int(42)).unwrap(), 42);
        assert_eq!(f64::from_value(&Value::Int(42)).unwrap(), 42.0);
        assert_eq!(u32::from_value(&Value::Float(7.0)).unwrap(), 7);
        assert!(u32::from_value(&Value::Float(7.5)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn tuples_as_seqs() {
        let v = (3u64, 0.5f64).to_value();
        assert_eq!(v, Value::Seq(vec![Value::Int(3), Value::Float(0.5)]));
        let back: (u64, f64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (3, 0.5));
    }
}
