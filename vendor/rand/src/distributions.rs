//! Distribution traits and the uniform distribution family.

pub mod uniform;

pub use uniform::Uniform;

use crate::RngCore;

/// Types that produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

    /// An iterator of samples (rarely used; provided for API parity).
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        Self: Sized,
        R: RngCore,
    {
        DistIter {
            distr: self,
            rng,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "standard" distribution: what [`crate::Rng::gen`] samples from.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl<T: crate::StandardSample> Distribution<T> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::standard_sample(rng)
    }
}

/// Iterator adapter returned by [`Distribution::sample_iter`].
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: std::marker::PhantomData<T>,
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}
