//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The build environment has no network access, so the workspace vendors the
//! narrow slice of `rand` it actually uses: [`RngCore`], [`SeedableRng`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`distributions::Uniform`]. The numeric conversions follow the upstream
//! definitions (53-bit mantissa floats, Lemire-style bounded integers is
//! replaced by simple widening multiply rejection-free mapping) so the
//! statistical properties the test-suite relies on hold.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::uniform::SampleUniform;

/// Core trait for random number generators: a source of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled "from the standard distribution" via
/// [`Rng::gen`]: uniform over all values for integers, uniform in `[0, 1)`
/// for floats.
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64, u128 => next_u64
);

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1), matching upstream.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution for its type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::standard_sample(self) < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Expand a `u64` into seed bytes with a PCG32 stream, bit-identical to
/// `rand_core` 0.6's `seed_from_u64` default. Public so bulk seeding paths
/// (e.g. batched ChaCha key derivation) can reproduce the exact byte stream
/// `seed_from_u64` would produce without constructing an RNG per seed.
#[inline]
pub fn fill_seed_bytes_from_u64(mut state: u64, out: &mut [u8]) {
    const MUL: u64 = 6364136223846793005;
    const INC: u64 = 11634580027462260723;
    for chunk in out.chunks_mut(4) {
        state = state.wrapping_mul(MUL).wrapping_add(INC);
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        let x = xorshifted.rotate_right(rot);
        let n = chunk.len();
        chunk.copy_from_slice(&x.to_le_bytes()[..n]);
    }
}

/// [`fill_seed_bytes_from_u64`] specialized to the 32-byte / 8-word seed
/// every ChaCha RNG uses: each PCG32 output *is* one little-endian seed
/// word, so the byte round-trip can be skipped entirely. Bit-identical to
/// reading the 32 bytes back as LE `u32`s.
#[inline]
pub fn seed_words_from_u64(mut state: u64) -> [u32; 8] {
    const MUL: u64 = 6364136223846793005;
    const INC: u64 = 11634580027462260723;
    let mut words = [0u32; 8];
    for w in &mut words {
        state = state.wrapping_mul(MUL).wrapping_add(INC);
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        *w = xorshifted.rotate_right(rot);
    }
    words
}

/// Four seeds expanded at once, interleaving the four independent PCG32
/// chains so the multiply-add latency of one chain overlaps the others'.
/// [`seed_words_from_u64`] is a strict dependency chain — eight serial
/// multiply-adds — so expanding keys one at a time leaves the multiplier
/// idle most of the time; interleaving recovers roughly the issue width.
/// Each output is bit-identical to `seed_words_from_u64` on that seed.
#[inline]
pub fn seed_words_from_u64_x4(mut states: [u64; 4]) -> [[u32; 8]; 4] {
    const MUL: u64 = 6364136223846793005;
    const INC: u64 = 11634580027462260723;
    let mut words = [[0u32; 8]; 4];
    // Word-major iteration order IS the interleave — don't "simplify" this
    // into four independent per-seed loops.
    for w in 0..8 {
        for (lane, state) in words.iter_mut().zip(states.iter_mut()) {
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((*state >> 18) ^ *state) >> 27) as u32;
            let rot = (*state >> 59) as u32;
            lane[w] = xorshifted.rotate_right(rot);
        }
    }
    words
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with a PCG32 stream, bit-identical to
    /// `rand_core` 0.6 — seeds like `ChaCha8Rng::seed_from_u64(2007)` must
    /// reproduce the exact upstream keystream the seed tests were written
    /// against.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        fill_seed_bytes_from_u64(state, seed.as_mut());
        Self::from_seed(seed)
    }

    fn from_entropy() -> Self {
        // No OS entropy source is needed offline; derive from the process
        // clock so independent constructions still differ.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seed_words_match_seed_bytes() {
        for state in [0u64, 1, 2007, 0xDEAD_BEEF, u64::MAX] {
            let mut bytes = [0u8; 32];
            fill_seed_bytes_from_u64(state, &mut bytes);
            let via_bytes: Vec<u32> = bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            assert_eq!(
                seed_words_from_u64(state).to_vec(),
                via_bytes,
                "state {state}"
            );
        }
    }

    #[test]
    fn interleaved_seed_expansion_matches_single() {
        let states = [0u64, 2007, 0xDEAD_BEEF, u64::MAX];
        let bulk = seed_words_from_u64_x4(states);
        for (k, &s) in states.iter().enumerate() {
            assert_eq!(bulk[k], seed_words_from_u64(s), "lane {k}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }
}
