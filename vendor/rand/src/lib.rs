//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The build environment has no network access, so the workspace vendors the
//! narrow slice of `rand` it actually uses: [`RngCore`], [`SeedableRng`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`distributions::Uniform`]. The numeric conversions follow the upstream
//! definitions (53-bit mantissa floats, Lemire-style bounded integers is
//! replaced by simple widening multiply rejection-free mapping) so the
//! statistical properties the test-suite relies on hold.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::uniform::SampleUniform;

/// Core trait for random number generators: a source of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled "from the standard distribution" via
/// [`Rng::gen`]: uniform over all values for integers, uniform in `[0, 1)`
/// for floats.
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64, u128 => next_u64
);

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1), matching upstream.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution for its type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::standard_sample(self) < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with a PCG32 stream, bit-identical to
    /// `rand_core` 0.6 — seeds like `ChaCha8Rng::seed_from_u64(2007)` must
    /// reproduce the exact upstream keystream the seed tests were written
    /// against.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }

    fn from_entropy() -> Self {
        // No OS entropy source is needed offline; derive from the process
        // clock so independent constructions still differ.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }
}
