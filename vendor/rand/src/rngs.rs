//! Concrete RNGs shipped with the stub: a small xoshiro-style generator that
//! stands in for `StdRng`/`SmallRng` where only statistical quality matters.

use crate::{RngCore, SeedableRng};

/// xoshiro256** — small, fast, good statistical quality. Used for both
/// `StdRng` and `SmallRng` aliases; code needing reproducible cross-crate
/// streams uses `rand_chacha` instead.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s == [0; 4] {
            s = [
                0x9E3779B97F4A7C15,
                0x6A09E667F3BCC909,
                0xBB67AE8584CAA73B,
                0x3C6EF372FE94F82B,
            ];
        }
        Xoshiro256StarStar { s }
    }
}

/// Alias matching `rand::rngs::StdRng`.
pub type StdRng = Xoshiro256StarStar;
/// Alias matching `rand::rngs::SmallRng`.
pub type SmallRng = Xoshiro256StarStar;
