//! Uniform sampling over ranges of primitive types.

use super::Distribution;
use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Marker + implementation trait for types that can be sampled uniformly
/// from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

// Integers: Lemire's widening-multiply method with rejection, matching
// upstream `UniformInt::sample_single` so integer draws consume the same
// number of RNG words and produce the same values. `$w` is the working word
// width upstream uses for the type (u32 for <=32-bit, u64 for 64-bit).
macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty, $w:ty, $next:ident);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "Uniform: low >= high");
                let range = high.wrapping_sub(low) as $u as $w;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next() as $w;
                    let m = (v as u128) * (range as u128);
                    let hi = (m >> (<$w>::BITS)) as $w;
                    let lo = m as $w;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "Uniform: low > high");
                let range = (high.wrapping_sub(low) as $u as $w).wrapping_add(1);
                if range == 0 {
                    // Full integer domain.
                    return rng.$next() as $t;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next() as $w;
                    let m = (v as u128) * (range as u128);
                    let hi = (m >> (<$w>::BITS)) as $w;
                    let lo = m as $w;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u32, next_u32;
    u16 => u16, u32, next_u32;
    u32 => u32, u32, next_u32;
    u64 => u64, u64, next_u64;
    usize => usize, u64, next_u64;
    i8 => u8, u32, next_u32;
    i16 => u16, u32, next_u32;
    i32 => u32, u32, next_u32;
    i64 => u64, u64, next_u64;
    isize => usize, u64, next_u64
);

// Floats: upstream's `[1, 2)` mantissa-fill construction, kept operation-for-
// operation identical (`value1_2 * scale + offset`, not an algebraic
// rearrangement) so sample streams are bit-exact with rand 0.8.
macro_rules! impl_uniform_float {
    ($($t:ty => $u:ty, $next:ident, $bits_to_discard:expr, $exp_one:expr);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "Uniform: low >= high");
                let scale = high - low;
                let offset = low - scale;
                let value1_2 =
                    <$t>::from_bits($exp_one | (rng.$next() >> $bits_to_discard));
                value1_2 * scale + offset
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "Uniform: low > high");
                // Largest value0_1 can be is 1 - EPSILON; dividing by it lets
                // the top sample land exactly on `high`.
                let scale = (high - low) / (1.0 - <$t>::EPSILON);
                let value1_2 =
                    <$t>::from_bits($exp_one | (rng.$next() >> $bits_to_discard));
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + low
            }
        }
    )*};
}

impl_uniform_float!(
    f32 => u32, next_u32, 9, 0x3F80_0000u32;
    f64 => u64, next_u64, 12, 0x3FF0_0000_0000_0000u64
);

/// Uniform distribution over a fixed range, reusable across samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<X: SampleUniform> {
    low: X,
    high: X,
    inclusive: bool,
}

impl<X: SampleUniform> Uniform<X> {
    /// Uniform over `[low, high)`.
    pub fn new(low: X, high: X) -> Self {
        assert!(low < high, "Uniform::new called with low >= high");
        Uniform {
            low,
            high,
            inclusive: false,
        }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: X, high: X) -> Self {
        assert!(low <= high, "Uniform::new_inclusive called with low > high");
        Uniform {
            low,
            high,
            inclusive: true,
        }
    }
}

impl Uniform<f64> {
    /// Compute the sample this distribution would produce from one raw
    /// `next_u64` word, without an RNG. The expressions are kept
    /// operation-for-operation identical to [`SampleUniform::sample_half_open`]
    /// / [`SampleUniform::sample_inclusive`] for `f64`, so
    /// `dist.sample_from_u64_word(w)` is bit-identical to `dist.sample(rng)`
    /// when `rng.next_u64()` would have returned `w`. This is the primitive
    /// batched Monte-Carlo paths build on: draw all words up front, then map
    /// them through the distribution in a tight loop.
    #[inline]
    pub fn sample_from_u64_word(&self, word: u64) -> f64 {
        let value1_2 = f64::from_bits(0x3FF0_0000_0000_0000u64 | (word >> 12));
        if self.inclusive {
            let scale = (self.high - self.low) / (1.0 - f64::EPSILON);
            let value0_1 = value1_2 - 1.0;
            value0_1 * scale + self.low
        } else {
            let scale = self.high - self.low;
            let offset = self.low - scale;
            value1_2 * scale + offset
        }
    }
}

impl<X: SampleUniform> Distribution<X> for Uniform<X> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
        if self.inclusive {
            X::sample_inclusive(rng, self.low, self.high)
        } else {
            X::sample_half_open(rng, self.low, self.high)
        }
    }
}

/// Range-like arguments accepted by [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An "RNG" that replays a fixed word — lets the raw-word sampler be
    /// checked bit-for-bit against the RNG-driven path.
    struct FixedWord(u64);
    impl RngCore for FixedWord {
        fn next_u32(&mut self) -> u32 {
            self.0 as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = 0;
            }
        }
    }

    #[test]
    fn raw_word_sampler_is_bit_identical_to_rng_path() {
        let words = [0u64, 1, u64::MAX, 0x9E37_79B9_7F4A_7C15, 1 << 63, 0xFFF];
        let ranges = [(0.0, 1.0), (-3.5, 7.25), (75.0e6, 150.0e6), (1e-12, 2e-12)];
        for &(lo, hi) in &ranges {
            for &w in &words {
                let inc = Uniform::new_inclusive(lo, hi);
                let half = Uniform::new(lo, hi);
                assert_eq!(
                    inc.sample_from_u64_word(w).to_bits(),
                    inc.sample(&mut FixedWord(w)).to_bits(),
                    "inclusive [{lo}, {hi}] word {w:#x}"
                );
                assert_eq!(
                    half.sample_from_u64_word(w).to_bits(),
                    half.sample(&mut FixedWord(w)).to_bits(),
                    "half-open [{lo}, {hi}) word {w:#x}"
                );
            }
        }
    }
}
