//! Offline `criterion` shim.
//!
//! Real criterion does warmup, sampling and statistics; this shim executes
//! each benchmark closure once and prints the elapsed wall time. That keeps
//! `cargo test` (which runs `harness = false` bench targets) fast and
//! deterministic while preserving the upstream API so the bench sources stay
//! byte-compatible with the real crate.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Respect a name filter passed on the command line (cargo forwards
        // trailing args) so `cargo bench <name>` narrows as expected.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench" && a != "--test");
        Criterion { filter }
    }
}

impl Criterion {
    fn enabled(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.enabled(id) {
            run_one(id, &mut f);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; the single-shot shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Throughput annotation; recorded nowhere but accepted for parity.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.enabled(&full) {
            run_one(&full, &mut f);
        }
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.enabled(&full) {
            run_one(&full, &mut |b: &mut Bencher| f(b, input));
        }
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    let start = Instant::now();
    f(&mut bencher);
    let total = start.elapsed();
    let measured = if bencher.elapsed.is_zero() {
        total
    } else {
        bencher.elapsed
    };
    println!("bench: {id:<60} {:>12.3?}", measured);
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Execute the routine once, timing it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }

    /// Batched variant: setup excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
    }
}

/// Batch-size hint for `iter_batched`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotations.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Parameterised benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
