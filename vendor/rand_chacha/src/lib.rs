//! ChaCha-based RNGs over the vendored `rand` traits.
//!
//! This is a genuine ChaCha implementation (the full quarter-round block
//! function with a 64-bit block counter), not a placeholder: the workspace
//! depends on ChaCha's guarantees — cheap arbitrary seeding, independent
//! streams from nearby seeds, and platform-independent output — for its
//! deterministic parallel RNG scheme.

use rand::{RngCore, SeedableRng};

const CHACHA_WORDS: usize = 16;

/// `RAT_FORCE_SCALAR=1` disables the runtime-dispatched AVX2 batch paths so
/// every draw goes through the scalar block function. Duplicated from
/// `rat_core::simd` (this crate sits below `rat-core` in the dependency
/// graph) with the same semantics: set and non-`0` means scalar, read once.
#[cfg(target_arch = "x86_64")]
fn force_scalar() -> bool {
    use std::sync::OnceLock;
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| match std::env::var("RAT_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; CHACHA_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (8, 12 or 20).
fn chacha_block(key: &[u32; 8], counter: u64, nonce: [u32; 2], rounds: u32) -> [u32; CHACHA_WORDS] {
    let mut state = [0u32; CHACHA_WORDS];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = nonce[0];
    state[15] = nonce[1];

    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

/// Compute the first keystream block (counter 0, nonce `[0, 0]`, 8 rounds)
/// for each key: entry `i` equals the 16 words `ChaCha8Rng::from_seed(key_i)`
/// buffers on its first refill, so the first eight `next_u64` draws of that
/// RNG are `words[2d] | words[2d+1] << 32` for `d in 0..8`.
///
/// On x86-64 with AVX2 the keys are processed eight at a time in a vertical
/// multi-buffer layout (each of the 16 state words is one 256-bit vector
/// holding that word for eight keys), which is where batched Monte-Carlo
/// sampling gets its per-sample win; everywhere else — and for the tail of a
/// non-multiple-of-eight batch — the scalar block function is used. Both
/// paths are exact integer arithmetic, so the output is identical.
pub fn chacha8_first_blocks(keys: &[[u32; 8]]) -> Vec<[u32; CHACHA_WORDS]> {
    #[cfg(target_arch = "x86_64")]
    {
        if !force_scalar() && is_x86_feature_detected!("avx2") {
            return unsafe { avx2::chacha8_first_blocks(keys) };
        }
    }
    keys.iter()
        .map(|key| chacha_block(key, 0, [0, 0], 8))
        .collect()
}

/// Pack one first block into the eight `u64` draws it yields: draw `d` is
/// `words[2d] | words[2d+1] << 32`, matching `next_u64`'s low-then-high
/// word order.
#[inline]
fn pack_draws(block: &[u32; CHACHA_WORDS]) -> [u64; 8] {
    std::array::from_fn(|d| block[2 * d] as u64 | (block[2 * d + 1] as u64) << 32)
}

/// [`chacha8_first_blocks`] already packed into `u64` draws: entry `i` holds
/// the first eight `next_u64` results of `ChaCha8Rng::from_seed(key_i)`.
///
/// This is the form batched Monte-Carlo actually consumes, and producing it
/// directly matters: on the AVX2 path the transposed keystream rows are
/// little-endian `u32` pairs in exactly `u64` draw order, so they store
/// straight into the draw vector — no intermediate block vector, no
/// word-by-word repacking pass over the whole batch.
pub fn chacha8_first_draws(keys: &[[u32; 8]]) -> Vec<[u64; 8]> {
    #[cfg(target_arch = "x86_64")]
    {
        if !force_scalar() && is_x86_feature_detected!("avx2") {
            return unsafe { avx2::chacha8_first_draws(keys) };
        }
    }
    keys.iter()
        .map(|key| pack_draws(&chacha_block(key, 0, [0, 0], 8)))
        .collect()
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{chacha_block, CHACHA_WORDS, SIGMA};
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_or_si256, _mm256_permute2x128_si256,
        _mm256_set1_epi32, _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8,
        _mm256_slli_epi32, _mm256_srli_epi32, _mm256_storeu_si256, _mm256_unpackhi_epi32,
        _mm256_unpackhi_epi64, _mm256_unpacklo_epi32, _mm256_unpacklo_epi64, _mm256_xor_si256,
    };

    /// Rotations by 16 and 8 are byte-granular, so a single `vpshufb` does
    /// each — one shuffle instead of the shift/shift/or triple the odd
    /// rotations need.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn rotl16(x: __m256i) -> __m256i {
        let idx = _mm256_setr_epi8(
            2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13, //
            2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,
        );
        _mm256_shuffle_epi8(x, idx)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn rotl12(x: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi32::<12>(x), _mm256_srli_epi32::<20>(x))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn rotl8(x: __m256i) -> __m256i {
        let idx = _mm256_setr_epi8(
            3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14, //
            3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14,
        );
        _mm256_shuffle_epi8(x, idx)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn rotl7(x: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi32::<7>(x), _mm256_srli_epi32::<25>(x))
    }

    macro_rules! qr {
        ($s:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {{
            $s[$a] = _mm256_add_epi32($s[$a], $s[$b]);
            $s[$d] = rotl16(_mm256_xor_si256($s[$d], $s[$a]));
            $s[$c] = _mm256_add_epi32($s[$c], $s[$d]);
            $s[$b] = rotl12(_mm256_xor_si256($s[$b], $s[$c]));
            $s[$a] = _mm256_add_epi32($s[$a], $s[$b]);
            $s[$d] = rotl8(_mm256_xor_si256($s[$d], $s[$a]));
            $s[$c] = _mm256_add_epi32($s[$c], $s[$d]);
            $s[$b] = rotl7(_mm256_xor_si256($s[$b], $s[$c]));
        }};
    }

    /// 8x8 `u32` transpose in registers: `r[i]` holding row `i` becomes
    /// `t[w]` holding column `w`. Three shuffle layers (32-bit unpack, 64-bit
    /// unpack, 128-bit lane permute), no memory traffic.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn transpose8(r: [__m256i; 8]) -> [__m256i; 8] {
        let t0 = _mm256_unpacklo_epi32(r[0], r[1]);
        let t1 = _mm256_unpackhi_epi32(r[0], r[1]);
        let t2 = _mm256_unpacklo_epi32(r[2], r[3]);
        let t3 = _mm256_unpackhi_epi32(r[2], r[3]);
        let t4 = _mm256_unpacklo_epi32(r[4], r[5]);
        let t5 = _mm256_unpackhi_epi32(r[4], r[5]);
        let t6 = _mm256_unpacklo_epi32(r[6], r[7]);
        let t7 = _mm256_unpackhi_epi32(r[6], r[7]);
        let u0 = _mm256_unpacklo_epi64(t0, t2);
        let u1 = _mm256_unpackhi_epi64(t0, t2);
        let u2 = _mm256_unpacklo_epi64(t1, t3);
        let u3 = _mm256_unpackhi_epi64(t1, t3);
        let u4 = _mm256_unpacklo_epi64(t4, t6);
        let u5 = _mm256_unpackhi_epi64(t4, t6);
        let u6 = _mm256_unpacklo_epi64(t5, t7);
        let u7 = _mm256_unpackhi_epi64(t5, t7);
        [
            _mm256_permute2x128_si256::<0x20>(u0, u4),
            _mm256_permute2x128_si256::<0x20>(u1, u5),
            _mm256_permute2x128_si256::<0x20>(u2, u6),
            _mm256_permute2x128_si256::<0x20>(u3, u7),
            _mm256_permute2x128_si256::<0x31>(u0, u4),
            _mm256_permute2x128_si256::<0x31>(u1, u5),
            _mm256_permute2x128_si256::<0x31>(u2, u6),
            _mm256_permute2x128_si256::<0x31>(u3, u7),
        ]
    }

    /// One group of eight first blocks, transposed back to row layout:
    /// `lo[j]` holds words 0..8 and `hi[j]` words 8..16 of key `base + j`'s
    /// block. Keys enter and blocks leave through [`transpose8`]: eight
    /// contiguous 32-byte key rows are loaded and transposed into the
    /// vertical layout, and the finished state is transposed back so each
    /// output row is two contiguous 32-byte stores. The earlier
    /// lane-at-a-time gather/scatter was the hot path's single largest cost —
    /// 128 bounds-checked scalar writes per 8-key group.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn first_blocks8(keys: &[[u32; 8]]) -> ([__m256i; 8], [__m256i; 8]) {
        let rows: [__m256i; 8] =
            std::array::from_fn(|j| _mm256_loadu_si256(keys[j].as_ptr().cast::<__m256i>()));
        let key_cols = transpose8(rows);
        let mut s = [_mm256_setzero_si256(); CHACHA_WORDS];
        for (w, sig) in SIGMA.iter().enumerate() {
            s[w] = _mm256_set1_epi32(*sig as i32);
        }
        s[4..12].copy_from_slice(&key_cols);
        // Words 12..16 (counter, nonce) stay zero for the first block.
        let initial = s;
        for _ in 0..4 {
            // Column round.
            qr!(s, 0, 4, 8, 12);
            qr!(s, 1, 5, 9, 13);
            qr!(s, 2, 6, 10, 14);
            qr!(s, 3, 7, 11, 15);
            // Diagonal round.
            qr!(s, 0, 5, 10, 15);
            qr!(s, 1, 6, 11, 12);
            qr!(s, 2, 7, 8, 13);
            qr!(s, 3, 4, 9, 14);
        }
        for w in 0..CHACHA_WORDS {
            s[w] = _mm256_add_epi32(s[w], initial[w]);
        }
        let lo = transpose8([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]);
        let hi = transpose8([s[8], s[9], s[10], s[11], s[12], s[13], s[14], s[15]]);
        (lo, hi)
    }

    /// Eight first blocks per iteration; scalar tail for the remainder.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn chacha8_first_blocks(keys: &[[u32; 8]]) -> Vec<[u32; CHACHA_WORDS]> {
        let mut out = vec![[0u32; CHACHA_WORDS]; keys.len()];
        let mut base = 0;
        while base + 8 <= keys.len() {
            let (lo, hi) = first_blocks8(&keys[base..base + 8]);
            for j in 0..8 {
                let row = out[base + j].as_mut_ptr();
                _mm256_storeu_si256(row.cast::<__m256i>(), lo[j]);
                _mm256_storeu_si256(row.add(8).cast::<__m256i>(), hi[j]);
            }
            base += 8;
        }
        for (i, key) in keys.iter().enumerate().skip(base) {
            out[i] = chacha_block(key, 0, [0, 0], 8);
        }
        out
    }

    /// As [`chacha8_first_blocks`], but stored directly as `u64` draws.
    /// x86-64 is little-endian, so a row of sixteen LE `u32` keystream words
    /// already has the exact byte layout of the eight `lo | hi << 32` draws —
    /// the same two 32-byte stores land the packed form with no extra pass.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn chacha8_first_draws(keys: &[[u32; 8]]) -> Vec<[u64; 8]> {
        let mut out = vec![[0u64; 8]; keys.len()];
        let mut base = 0;
        while base + 8 <= keys.len() {
            let (lo, hi) = first_blocks8(&keys[base..base + 8]);
            for j in 0..8 {
                let row = out[base + j].as_mut_ptr().cast::<u32>();
                _mm256_storeu_si256(row.cast::<__m256i>(), lo[j]);
                _mm256_storeu_si256(row.add(8).cast::<__m256i>(), hi[j]);
            }
            base += 8;
        }
        for (i, key) in keys.iter().enumerate().skip(base) {
            out[i] = super::pack_draws(&chacha_block(key, 0, [0, 0], 8));
        }
        out
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            nonce: [u32; 2],
            counter: u64,
            buffer: [u32; CHACHA_WORDS],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = chacha_block(&self.key, self.counter, self.nonce, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }

            /// Set the stream number (upstream API parity; distinct streams
            /// yield independent sequences).
            pub fn set_stream(&mut self, stream: u64) {
                self.nonce = [stream as u32, (stream >> 32) as u32];
                self.counter = 0;
                self.index = CHACHA_WORDS; // force refill
            }

            /// Current word position within the keystream (parity helper).
            pub fn get_word_pos(&self) -> u128 {
                (self.counter as u128) * CHACHA_WORDS as u128 + self.index as u128
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= CHACHA_WORDS {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let b = self.next_u32().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&b[..n]);
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name {
                    key,
                    nonce: [0, 0],
                    counter: 0,
                    buffer: [0; CHACHA_WORDS],
                    index: CHACHA_WORDS,
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: the workspace's deterministic workhorse."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2007);
        let mut b = ChaCha8Rng::seed_from_u64(2007);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chacha20_matches_rfc8439_block_structure() {
        // RFC 8439 §2.3.2 test vector uses a 96-bit nonce layout; our layout is
        // the original djb 64-bit counter / 64-bit nonce variant, so instead of
        // the RFC vector we verify algebraic properties: the block function is
        // a bijection-like mix (no fixed output) and counter increments change
        // every word.
        let key = [0u32; 8];
        let b0 = chacha_block(&key, 0, [0, 0], 20);
        let b1 = chacha_block(&key, 1, [0, 0], 20);
        assert_ne!(b0, b1);
        assert!(b0.iter().zip(b1.iter()).filter(|(x, y)| x == y).count() < 4);
    }

    #[test]
    fn first_blocks_match_scalar_block_function() {
        // 13 keys: one full AVX2 group of 8 plus a 5-key scalar tail.
        let keys: Vec<[u32; 8]> = (0u32..13)
            .map(|i| std::array::from_fn(|w| i.wrapping_mul(0x9E37_79B9).wrapping_add(w as u32)))
            .collect();
        let batched = chacha8_first_blocks(&keys);
        for (key, block) in keys.iter().zip(&batched) {
            assert_eq!(*block, chacha_block(key, 0, [0, 0], 8));
        }
    }

    #[test]
    fn first_blocks_match_rng_word_stream() {
        // The first eight u64 draws of ChaCha8Rng must be reconstructible
        // from the batched first block: draw d = words[2d] | words[2d+1]<<32.
        let seeds = [0u64, 1, 42, 2007, u64::MAX, 0x1234_5678_9ABC_DEF0];
        let keys: Vec<[u32; 8]> = seeds
            .iter()
            .map(|&s| {
                let mut bytes = [0u8; 32];
                rand::fill_seed_bytes_from_u64(s, &mut bytes);
                std::array::from_fn(|w| {
                    u32::from_le_bytes(bytes[4 * w..4 * w + 4].try_into().unwrap())
                })
            })
            .collect();
        let blocks = chacha8_first_blocks(&keys);
        for (&seed, block) in seeds.iter().zip(&blocks) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for d in 0..8 {
                let expect = rng.next_u64();
                let got = block[2 * d] as u64 | (block[2 * d + 1] as u64) << 32;
                assert_eq!(got, expect, "seed {seed} draw {d}");
            }
        }
    }

    #[test]
    fn first_draws_match_first_blocks_packing() {
        // 13 keys: one full AVX2 group of 8 plus a 5-key scalar tail.
        let keys: Vec<[u32; 8]> = (0u32..13)
            .map(|i| std::array::from_fn(|w| i.wrapping_mul(0x85EB_CA6B).wrapping_add(w as u32)))
            .collect();
        let blocks = chacha8_first_blocks(&keys);
        let draws = chacha8_first_draws(&keys);
        assert_eq!(draws.len(), keys.len());
        for (i, block) in blocks.iter().enumerate() {
            assert_eq!(draws[i], pack_draws(block), "key {i}");
        }
    }

    #[test]
    fn float_stream_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
