//! ChaCha-based RNGs over the vendored `rand` traits.
//!
//! This is a genuine ChaCha implementation (the full quarter-round block
//! function with a 64-bit block counter), not a placeholder: the workspace
//! depends on ChaCha's guarantees — cheap arbitrary seeding, independent
//! streams from nearby seeds, and platform-independent output — for its
//! deterministic parallel RNG scheme.

use rand::{RngCore, SeedableRng};

const CHACHA_WORDS: usize = 16;
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; CHACHA_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (8, 12 or 20).
fn chacha_block(key: &[u32; 8], counter: u64, nonce: [u32; 2], rounds: u32) -> [u32; CHACHA_WORDS] {
    let mut state = [0u32; CHACHA_WORDS];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = nonce[0];
    state[15] = nonce[1];

    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            nonce: [u32; 2],
            counter: u64,
            buffer: [u32; CHACHA_WORDS],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = chacha_block(&self.key, self.counter, self.nonce, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }

            /// Set the stream number (upstream API parity; distinct streams
            /// yield independent sequences).
            pub fn set_stream(&mut self, stream: u64) {
                self.nonce = [stream as u32, (stream >> 32) as u32];
                self.counter = 0;
                self.index = CHACHA_WORDS; // force refill
            }

            /// Current word position within the keystream (parity helper).
            pub fn get_word_pos(&self) -> u128 {
                (self.counter as u128) * CHACHA_WORDS as u128 + self.index as u128
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= CHACHA_WORDS {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let b = self.next_u32().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&b[..n]);
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name {
                    key,
                    nonce: [0, 0],
                    counter: 0,
                    buffer: [0; CHACHA_WORDS],
                    index: CHACHA_WORDS,
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: the workspace's deterministic workhorse."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2007);
        let mut b = ChaCha8Rng::seed_from_u64(2007);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chacha20_matches_rfc8439_block_structure() {
        // RFC 8439 §2.3.2 test vector uses a 96-bit nonce layout; our layout is
        // the original djb 64-bit counter / 64-bit nonce variant, so instead of
        // the RFC vector we verify algebraic properties: the block function is
        // a bijection-like mix (no fixed output) and counter increments change
        // every word.
        let key = [0u32; 8];
        let b0 = chacha_block(&key, 0, [0, 0], 20);
        let b1 = chacha_block(&key, 1, [0, 0], 20);
        assert_ne!(b0, b1);
        assert!(b0.iter().zip(b1.iter()).filter(|(x, y)| x == y).count() < 4);
    }

    #[test]
    fn float_stream_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
