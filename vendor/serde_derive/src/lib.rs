//! Derive macros for the vendored value-tree serde.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`, which
//! aren't available offline): a small walker extracts the item shape —
//! struct with named/tuple fields, or enum with unit/newtype/tuple/struct
//! variants, plus `#[serde(default)]` markers — and the impls are emitted as
//! source strings parsed back into a `TokenStream`. Generic types are not
//! supported (the workspace derives only on concrete types).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    has_default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Unnamed(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Consume one leading attribute if present; return whether it contained
/// `serde(default)` or bare `default` (the `#[default]` std derive marker is
/// irrelevant but harmless to detect).
fn eat_attribute(iter: &mut Tokens) -> Option<bool> {
    if !matches!(iter.peek(), Some(tt) if is_punct(tt, '#')) {
        return None;
    }
    iter.next(); // '#'
    let Some(TokenTree::Group(g)) = iter.next() else {
        panic!("serde derive: expected [...] after #");
    };
    let mut inner = g.stream().into_iter();
    let mut has_serde_default = false;
    if let Some(first) = inner.next() {
        if is_ident(&first, "serde") {
            if let Some(TokenTree::Group(args)) = inner.next() {
                for tt in args.stream() {
                    if is_ident(&tt, "default") {
                        has_serde_default = true;
                    } else if let TokenTree::Ident(other) = &tt {
                        panic!(
                            "vendored serde derive supports only #[serde(default)], found `{other}`"
                        );
                    }
                }
            }
        }
    }
    Some(has_serde_default)
}

fn skip_attributes(iter: &mut Tokens) -> bool {
    let mut default = false;
    while let Some(d) = eat_attribute(iter) {
        default |= d;
    }
    default
}

fn skip_visibility(iter: &mut Tokens) {
    if matches!(iter.peek(), Some(tt) if is_ident(tt, "pub")) {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Consume tokens of a type expression until a top-level `,` (consumed) or
/// end of stream, tracking `<...>` nesting.
fn skip_type(iter: &mut Tokens) {
    let mut angle = 0i32;
    while let Some(tt) = iter.peek() {
        if is_punct(tt, ',') && angle == 0 {
            iter.next();
            return;
        }
        if is_punct(tt, '<') {
            angle += 1;
        } else if is_punct(tt, '>') {
            angle -= 1;
        }
        iter.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let has_default = skip_attributes(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(tt) if is_punct(&tt, ':') => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(Field { name, has_default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut saw_tokens_since_comma = false;
    for tt in stream {
        if is_punct(&tt, ',') && angle == 0 {
            if saw_tokens_since_comma {
                count += 1;
            }
            saw_tokens_since_comma = false;
            continue;
        }
        if is_punct(&tt, '<') {
            angle += 1;
        } else if is_punct(&tt, '>') {
            angle -= 1;
        }
        saw_tokens_since_comma = true;
    }
    if saw_tokens_since_comma {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                iter.next();
                Fields::Unnamed(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                iter.next();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        // Consume up to and including the separating comma (covers explicit
        // discriminants, which never appear in this workspace anyway).
        for tt in iter.by_ref() {
            if is_punct(&tt, ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        match iter.next() {
            Some(tt) if is_ident(&tt, "pub") => {
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            Some(tt) if is_ident(&tt, "struct") => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(i)) => i.to_string(),
                    other => panic!("serde derive: expected struct name, found {other:?}"),
                };
                if matches!(iter.peek(), Some(tt) if is_punct(tt, '<')) {
                    panic!("vendored serde derive does not support generic type `{name}`");
                }
                let fields = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Unnamed(count_tuple_fields(g.stream()))
                    }
                    Some(tt) if is_punct(&tt, ';') => Fields::Unit,
                    None => Fields::Unit,
                    other => panic!("serde derive: unexpected token after struct name: {other:?}"),
                };
                return Item::Struct { name, fields };
            }
            Some(tt) if is_ident(&tt, "enum") => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(i)) => i.to_string(),
                    other => panic!("serde derive: expected enum name, found {other:?}"),
                };
                if matches!(iter.peek(), Some(tt) if is_punct(tt, '<')) {
                    panic!("vendored serde derive does not support generic type `{name}`");
                }
                let variants = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        parse_variants(g.stream())
                    }
                    other => panic!("serde derive: expected enum body, found {other:?}"),
                };
                return Item::Enum { name, variants };
            }
            Some(_) => continue,
            None => panic!("serde derive: no struct or enum found in input"),
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let mut entries = String::new();
                    for f in fields {
                        let fname = &f.name;
                        entries.push_str(&format!(
                            "(\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname})),"
                        ));
                    }
                    format!("::serde::Value::Map(vec![{entries}])")
                }
                Fields::Unnamed(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Unnamed(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(","))
                }
                Fields::Unit => "::serde::Value::Unit".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                    )),
                    Fields::Unnamed(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                    )),
                    Fields::Unnamed(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Seq(vec![{}]))]),",
                            pats.join(","),
                            items.join(",")
                        ));
                    }
                    Fields::Named(fields) => {
                        let pats: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                            pats.join(","),
                            entries.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn gen_named_constructor(path: &str, fields: &[Field], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let helper = if f.has_default {
                "field_or_default"
            } else {
                "field"
            };
            format!(
                "{0}: ::serde::__private::{helper}({map_expr}, \"{0}\")?",
                f.name
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(","))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let ctor = gen_named_constructor(name, fields, "__map");
                    format!(
                        "let __map = __value.as_map().ok_or_else(|| ::serde::DeError::expected(\"map for struct {name}\", __value))?;\n\
                         Ok({ctor})"
                    )
                }
                Fields::Unnamed(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
                }
                Fields::Unnamed(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match __value {{\n\
                             ::serde::Value::Seq(__items) if __items.len() == {n} => Ok({name}({inits})),\n\
                             __other => Err(::serde::DeError::expected(\"array of {n} for {name}\", __other)),\n\
                         }}",
                        inits = inits.join(",")
                    )
                }
                Fields::Unit => format!(
                    "match __value {{\n\
                         ::serde::Value::Unit => Ok({name}),\n\
                         __other => Err(::serde::DeError::expected(\"unit\", __other)),\n\
                     }}"
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),"));
                    }
                    Fields::Unnamed(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(__inner).map_err(|e| e.in_field(\"{vname}\"))?)),"
                    )),
                    Fields::Unnamed(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                                 ::serde::Value::Seq(__items) if __items.len() == {n} => Ok({name}::{vname}({inits})),\n\
                                 __other => Err(::serde::DeError::expected(\"array of {n} for variant {vname}\", __other)),\n\
                             }},",
                            inits = inits.join(",")
                        ));
                    }
                    Fields::Named(fields) => {
                        let ctor =
                            gen_named_constructor(&format!("{name}::{vname}"), fields, "__vmap");
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __vmap = __inner.as_map().ok_or_else(|| ::serde::DeError::expected(\"map for variant {vname}\", __inner))?;\n\
                                 Ok({ctor})\n\
                             }},"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::DeError::expected(\"string or single-entry map for enum {name}\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
