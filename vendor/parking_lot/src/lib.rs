//! `parking_lot`-compatible locks backed by `std::sync`.
//!
//! The semantic difference this shim papers over is poisoning: `parking_lot`
//! locks never poison, so lock acquisition here unwraps or recovers the
//! poisoned inner guard, preserving the "a panicking holder doesn't brick the
//! lock" behaviour callers rely on.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutex with `parking_lot`'s `lock() -> Guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Non-poisoning reader–writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_recovers_from_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
