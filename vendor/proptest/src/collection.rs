//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Acceptable length specifiers for [`vec`].
pub trait SizeRange {
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
