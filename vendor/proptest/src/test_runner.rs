//! Deterministic case runner.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) samples tolerated before erroring.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// The RNG handed to strategies. ChaCha8-backed: deterministic, seedable,
/// platform-independent.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The sample was rejected by `prop_assume!` — try another.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `cases` generated cases of `body`, panicking on the first failure with
/// the case index (re-running the same binary reproduces it: seeds derive
/// from the test name alone).
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, body: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(test_name);
    let mut rejects: u32 = 0;
    let mut case: u64 = 0;
    let mut passed: u32 = 0;
    while passed < config.cases {
        let mut rng = TestRng {
            inner: ChaCha8Rng::seed_from_u64(base ^ case),
        };
        case += 1;
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!("proptest `{test_name}`: too many prop_assume! rejections");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` failed at case {} (seed base {base:#x}): {msg}",
                    case - 1
                );
            }
        }
    }
}
