//! Strategy trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of test values. Unlike upstream (value *trees* supporting
/// shrinking), this produces final values directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keep only values satisfying `pred`, retrying a bounded number of
    /// times (upstream rejects-and-resamples similarly).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }

    /// Generate a value, then build a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Box the strategy (upstream `.boxed()`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Boxed strategies are strategies too, so `prop_oneof!` arms compose.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

// Numeric ranges are strategies, as upstream.
macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}
