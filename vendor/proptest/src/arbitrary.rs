//! `any::<T>()` — strategies for primitive types' full domains.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, wide-dynamic-range floats (upstream's `any::<f64>()` also
        // produces infinities/NaN; no caller here wants them).
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        let exponent: i32 = rng.gen_range(-64..64);
        mantissa * (exponent as f64).exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap_or('?')
    }
}
