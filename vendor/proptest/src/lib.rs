//! Offline subset of `proptest`.
//!
//! Differences from upstream, chosen for an offline, deterministic test
//! environment:
//!
//! - Case generation is seeded from a hash of the test name, so every run
//!   (and every thread count) explores the same inputs. There is no
//!   persistence; `*.proptest-regressions` files are not consulted — the
//!   properties must simply hold for the generated corpus.
//! - No shrinking: a failing case reports its case index and message
//!   directly. Re-running reproduces it exactly.
//! - Strategies are eager samplers (`generate(rng) -> Value`), which covers
//!   the combinator subset the workspace uses: ranges, tuples, `prop_map`,
//!   `prop_oneof!`, `Just`, `any`, and `collection::vec`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced module access, mirroring upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); ) => {};
    (($config:expr);
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                let ($($pat,)+) = ($($crate::strategy::Strategy::generate(&($strat), __rng),)+);
                $body
                Ok(())
            });
        }
        $crate::__proptest_tests!{ ($config); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( ::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>> ),+
        ])
    };
}
