//! The traits users glob-import.

pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
pub use crate::slice::ParallelSliceMut;
