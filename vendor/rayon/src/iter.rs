//! Eager parallel iterator types.

use crate::run_ordered;

/// An eager "parallel iterator": items are materialized up front and the
/// terminal operation fans them out across workers, reassembling in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub(crate) fn from_vec(items: Vec<T>) -> Self {
        ParIter { items }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Parallel map; the returned stage collects in input order.
    pub fn map<U, F>(self, f: F) -> MappedParIter<T, U, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        MappedParIter {
            items: self.items,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Flatten each item into a sequential iterator. The expansion itself is
    /// cheap in every call site (index/coordinate generation), so it runs on
    /// the calling thread; downstream `map` stages are parallel.
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I,
    {
        ParIter {
            items: self.items.into_iter().flat_map(f).collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_ordered(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel stage awaiting its terminal operation.
pub struct MappedParIter<T, U, F> {
    items: Vec<T>,
    f: F,
    _marker: std::marker::PhantomData<fn() -> U>,
}

impl<T, U, F> MappedParIter<T, U, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Run the map in parallel and collect results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        run_ordered(self.items, self.f).into_iter().collect()
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = self.f;
        run_ordered(self.items, move |t| g(f(t)));
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<U>,
    {
        run_ordered(self.items, self.f).into_iter().sum()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U,
        OP: Fn(U, U) -> U,
    {
        run_ordered(self.items, self.f)
            .into_iter()
            .fold(identity(), op)
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter::from_vec(self)
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Conversion into a parallel iterator over references (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data, const N: usize> IntoParallelRefIterator<'data> for [T; N] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}
