//! Offline subset of `rayon`.
//!
//! Instead of a work-stealing deque runtime this shim evaluates parallel
//! stages eagerly on `std::thread::scope` workers pulling indexed items from
//! a shared queue, then reassembles results **in input order**. That ordering
//! guarantee is the property the workspace's deterministic analysis engine is
//! built on: a `.map().collect()` chain yields byte-identical output at any
//! thread count, including 1.
//!
//! Supported surface: `par_iter` (slices/Vec), `into_par_iter` (Vec, integer
//! ranges), `map`, `flat_map_iter`, `collect`, `for_each`, `sum`,
//! `par_sort_unstable`, `ThreadPoolBuilder`/`ThreadPool::install`, and
//! `current_num_threads`.

use std::cell::Cell;
use std::ops::Range;
use std::sync::Mutex;

pub mod iter;
pub mod prelude;
pub mod slice;

pub use iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]. `0` means
    /// "use hardware parallelism".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel stages will use on this thread.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|t| t.get());
    if installed != 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (construction cannot actually
/// fail in this shim, but the signature matches upstream).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder matching `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// `0` means "use hardware parallelism", as upstream.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that scopes parallel stages to a fixed thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count governing any parallel stages
    /// it executes. (The shim runs `op` on the calling thread; only the
    /// degree of parallelism is scoped, which is all the workspace needs.)
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        let result = op();
        POOL_THREADS.with(|t| t.set(prev));
        result
    }

    pub fn current_num_threads(&self) -> usize {
        if self.num_threads != 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Worker threads actually worth spawning for a CPU-bound stage: the
/// installed count, capped at hardware parallelism. Upstream rayon keeps a
/// persistent pool so oversubscription only costs context switches; this
/// shim spawns scoped threads per stage, so every thread beyond the core
/// count is pure spawn-and-contend overhead with zero added throughput.
/// Results are input-ordered either way, so the cap cannot change output.
pub(crate) fn effective_workers() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    current_num_threads().clamp(1, hw)
}

/// Evaluate `f` over `items` on up to [`effective_workers`] workers,
/// returning results in input order.
pub(crate) fn run_ordered<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = effective_workers();
    let len = items.len();
    if workers == 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let done: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(len));
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers.min(len) {
            scope.spawn(|| loop {
                let next = queue.lock().unwrap().pop();
                match next {
                    Some((idx, item)) => {
                        let out = f(item);
                        done.lock().unwrap().push((idx, out));
                    }
                    None => break,
                }
            });
        }
    });

    let mut results = done.into_inner().unwrap();
    results.sort_unstable_by_key(|(idx, _)| *idx);
    debug_assert_eq!(results.len(), len);
    results.into_iter().map(|(_, u)| u).collect()
}

/// `rayon::join` — run two closures, potentially in parallel.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if effective_workers() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Integer ranges are parallel-iterable, matching upstream.
impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter::from_vec(self.collect())
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter::from_vec(self.collect())
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter::from_vec(self.collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ordered_collect_matches_sequential() {
        let xs: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = xs.iter().map(|&x| x * x).collect();
        let par: Vec<u64> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(crate::current_num_threads(), 0);
    }

    #[test]
    fn single_thread_pool_still_completes() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let out: Vec<usize> =
            pool.install(|| (0..100usize).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn flat_map_then_map() {
        let rows = [0usize, 1, 2];
        let out: Vec<usize> = rows
            .par_iter()
            .flat_map_iter(|&r| (0..3usize).map(move |c| r * 3 + c))
            .map(|v| v * 10)
            .collect();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn par_sort_unstable_sorts() {
        let mut v = vec![5, 3, 9, 1, 4];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 3, 4, 5, 9]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
