//! Parallel slice operations (`ParallelSliceMut` subset).

/// Mutable slice extensions: parallel sorts. With the eager shim the sort is
/// delegated to the (already highly optimized) sequential pattern-defeating
/// quicksort; the API exists so call sites keep the upstream spelling.
pub trait ParallelSliceMut<T: Send> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.as_parallel_slice_mut().sort_unstable();
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.as_parallel_slice_mut().sort();
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.as_parallel_slice_mut().sort_unstable_by_key(f);
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}
