//! Serialization of `serde::Value` trees to TOML text.

use serde::{Serialize, Value};

/// Error for unserializable shapes (non-map root, maps inside plain arrays
/// mixed with scalars, etc.).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TOML serialize error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a TOML document.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    render_document(&value.to_value())
}

/// Pretty variant — identical to [`to_string`] in this shim (the compact
/// writer already emits one key per line).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    to_string(value)
}

pub(crate) fn render_document(root: &Value) -> Result<String, Error> {
    let entries = match root {
        Value::Map(entries) => entries,
        other => {
            return Err(Error::new(format!(
                "root must be a table, got {}",
                other.type_name()
            )))
        }
    };
    let mut out = String::new();
    render_table(&mut out, &[], entries)?;
    Ok(out)
}

/// Does this value render as a sub-table (vs an inline value)?
fn is_table(v: &Value) -> bool {
    matches!(v, Value::Map(_))
}

/// Is this an array whose elements are all tables (rendered as `[[name]]`)?
fn is_table_array(v: &Value) -> bool {
    matches!(v, Value::Seq(items) if !items.is_empty() && items.iter().all(is_table))
}

fn render_table(
    out: &mut String,
    path: &[String],
    entries: &[(String, Value)],
) -> Result<(), Error> {
    // Scalars first (a key line after a `[sub]` header would belong to the
    // sub-table), then sub-tables in declaration order.
    for (key, value) in entries {
        if matches!(value, Value::None) || is_table(value) || is_table_array(value) {
            continue;
        }
        out.push_str(&format!(
            "{} = {}\n",
            render_key(key),
            render_inline(value)?
        ));
    }
    for (key, value) in entries {
        let mut child_path: Vec<String> = path.to_vec();
        child_path.push(key.clone());
        if let Value::Map(sub) = value {
            out.push('\n');
            out.push_str(&format!("[{}]\n", render_path(&child_path)));
            render_table(out, &child_path, sub)?;
        } else if is_table_array(value) {
            if let Value::Seq(items) = value {
                for item in items {
                    if let Value::Map(sub) = item {
                        out.push('\n');
                        out.push_str(&format!("[[{}]]\n", render_path(&child_path)));
                        render_table(out, &child_path, sub)?;
                    }
                }
            }
        }
    }
    Ok(())
}

fn render_path(path: &[String]) -> String {
    path.iter()
        .map(|p| render_key(p))
        .collect::<Vec<_>>()
        .join(".")
}

fn render_key(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_string()
    } else {
        render_string(key)
    }
}

fn render_inline(value: &Value) -> Result<String, Error> {
    match value {
        Value::Bool(b) => Ok(b.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        Value::Float(f) => Ok(render_float(*f)),
        Value::Str(s) => Ok(render_string(s)),
        Value::Seq(items) => {
            let rendered: Result<Vec<String>, Error> = items.iter().map(render_inline).collect();
            Ok(format!("[{}]", rendered?.join(", ")))
        }
        Value::Map(entries) => {
            // Inline-table form, used for maps nested inside arrays.
            let rendered: Result<Vec<String>, Error> = entries
                .iter()
                .filter(|(_, v)| !matches!(v, Value::None))
                .map(|(k, v)| Ok(format!("{} = {}", render_key(k), render_inline(v)?)))
                .collect();
            Ok(format!("{{ {} }}", rendered?.join(", ")))
        }
        Value::Unit => Err(Error::new("unit values are not representable in TOML")),
        Value::None => Err(Error::new("None at value position")),
    }
}

/// Floats keep a decimal point or exponent so they re-parse as floats
/// (`{:?}` gives `150000000.0`, `1e-12` style for extremes), matching the
/// upstream crate's output that the CLI tests string-match against.
fn render_float(f: f64) -> String {
    if f.is_nan() {
        "nan".to_string()
    } else if f.is_infinite() {
        if f < 0.0 {
            "-inf".to_string()
        } else {
            "inf".to_string()
        }
    } else {
        format!("{f:?}")
    }
}

fn render_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
