//! TOML parsing into `serde::Value`.

use serde::{DeError, Deserialize, Value};

/// Error returned by [`from_str`]: either a syntax error with position or a
/// data-model mismatch from the target type.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// The error message (upstream parity helper).
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TOML parse error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error { msg: e.to_string() }
    }
}

/// Deserialize a TOML document into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_document(text)?;
    Ok(T::from_value(&value)?)
}

/// Parse a TOML document into a root map value.
pub(crate) fn parse_document(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    let mut root = Value::Map(Vec::new());
    // Path of the table currently receiving key-value pairs; the final
    // component of an array-of-tables path addresses its last element.
    let mut current_path: Vec<String> = Vec::new();

    loop {
        parser.skip_trivia();
        if parser.at_end() {
            break;
        }
        if parser.peek() == Some('[') {
            parser.advance();
            let array_of_tables = parser.peek() == Some('[');
            if array_of_tables {
                parser.advance();
            }
            let path = parser.parse_dotted_key()?;
            parser.expect(']')?;
            if array_of_tables {
                parser.expect(']')?;
                push_array_table(&mut root, &path)?;
            } else {
                ensure_table(&mut root, &path)?;
            }
            current_path = path;
        } else {
            let key = parser.parse_key()?;
            parser.skip_inline_ws();
            parser.expect('=')?;
            parser.skip_inline_ws();
            let value = parser.parse_value()?;
            insert(&mut root, &current_path, key, value)?;
        }
    }
    Ok(root)
}

/// Walk `root` down `path`, creating intermediate tables, and return the
/// target table. For array-of-tables components, descend into the last
/// element.
fn navigate<'a>(root: &'a mut Value, path: &[String]) -> Result<&'a mut Value, Error> {
    let mut node = root;
    for part in path {
        // Two-phase borrow dance: find position first, then re-borrow.
        let entries = match node {
            Value::Map(entries) => entries,
            _ => return Err(Error::new(format!("`{part}` is not a table"))),
        };
        let idx = match entries.iter().position(|(k, _)| k == part) {
            Some(i) => i,
            None => {
                entries.push((part.clone(), Value::Map(Vec::new())));
                entries.len() - 1
            }
        };
        node = &mut entries[idx].1;
        if let Value::Seq(items) = node {
            node = items
                .last_mut()
                .ok_or_else(|| Error::new(format!("array of tables `{part}` is empty")))?;
        }
    }
    Ok(node)
}

fn ensure_table(root: &mut Value, path: &[String]) -> Result<(), Error> {
    navigate(root, path).map(|_| ())
}

fn push_array_table(root: &mut Value, path: &[String]) -> Result<(), Error> {
    let (parent_path, last) = path.split_at(path.len() - 1);
    let parent = navigate(root, parent_path)?;
    let entries = match parent {
        Value::Map(entries) => entries,
        _ => return Err(Error::new("array-of-tables parent is not a table")),
    };
    let key = &last[0];
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some((_, Value::Seq(items))) => items.push(Value::Map(Vec::new())),
        Some(_) => return Err(Error::new(format!("`{key}` redefined as array of tables"))),
        None => entries.push((key.clone(), Value::Seq(vec![Value::Map(Vec::new())]))),
    }
    Ok(())
}

fn insert(root: &mut Value, table: &[String], key: String, value: Value) -> Result<(), Error> {
    let node = navigate(root, table)?;
    let entries = match node {
        Value::Map(entries) => entries,
        _ => return Err(Error::new("key-value outside a table")),
    };
    if entries.iter().any(|(k, _)| *k == key) {
        return Err(Error::new(format!("duplicate key `{key}`")));
    }
    entries.push((key, value));
    Ok(())
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn advance(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn expect(&mut self, want: char) -> Result<(), Error> {
        match self.advance() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(Error::new(format!("expected `{want}`, found `{c}`"))),
            None => Err(Error::new(format!("expected `{want}`, found end of input"))),
        }
    }

    /// Skip whitespace (including newlines) and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.pos += 1;
                }
                Some('#') => {
                    while let Some(c) = self.advance() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip spaces and tabs only.
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    fn parse_key(&mut self) -> Result<String, Error> {
        match self.peek() {
            Some('"') => self.parse_basic_string(),
            Some('\'') => self.parse_literal_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    self.pos += 1;
                }
                Ok(self.chars[start..self.pos].iter().collect())
            }
            Some(c) => Err(Error::new(format!("invalid key start `{c}`"))),
            None => Err(Error::new("expected key, found end of input")),
        }
    }

    fn parse_dotted_key(&mut self) -> Result<Vec<String>, Error> {
        let mut parts = Vec::new();
        loop {
            self.skip_inline_ws();
            parts.push(self.parse_key()?);
            self.skip_inline_ws();
            if self.peek() == Some('.') {
                self.advance();
            } else {
                return Ok(parts);
            }
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.advance() {
                Some('"') => return Ok(out),
                Some('\\') => match self.advance() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('u') => {
                        let mut code = String::new();
                        for _ in 0..4 {
                            code.push(
                                self.advance()
                                    .ok_or_else(|| Error::new("truncated \\u escape"))?,
                            );
                        }
                        let n = u32::from_str_radix(&code, 16)
                            .map_err(|_| Error::new(format!("bad \\u escape `{code}`")))?;
                        out.push(
                            char::from_u32(n)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    Some(c) => return Err(Error::new(format!("unknown escape `\\{c}`"))),
                    None => return Err(Error::new("unterminated string")),
                },
                Some('\n') => return Err(Error::new("newline in basic string")),
                Some(c) => out.push(c),
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_literal_string(&mut self) -> Result<String, Error> {
        self.expect('\'')?;
        let mut out = String::new();
        loop {
            match self.advance() {
                Some('\'') => return Ok(out),
                Some('\n') => return Err(Error::new("newline in literal string")),
                Some(c) => out.push(c),
                None => return Err(Error::new("unterminated literal string")),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some('"') => Ok(Value::Str(self.parse_basic_string()?)),
            Some('\'') => Ok(Value::Str(self.parse_literal_string()?)),
            Some('[') => {
                self.advance();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    if self.peek() == Some(']') {
                        self.advance();
                        return Ok(Value::Seq(items));
                    }
                    items.push(self.parse_value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(',') => {
                            self.advance();
                        }
                        Some(']') => {}
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` in array, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some('{') => {
                self.advance();
                let mut entries = Vec::new();
                loop {
                    self.skip_inline_ws();
                    if self.peek() == Some('}') {
                        self.advance();
                        return Ok(Value::Map(entries));
                    }
                    let key = self.parse_key()?;
                    self.skip_inline_ws();
                    self.expect('=')?;
                    self.skip_inline_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_inline_ws();
                    match self.peek() {
                        Some(',') => {
                            self.advance();
                        }
                        Some('}') => {}
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` in inline table, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some('t' | 'f' | 'i' | 'n') => self.parse_symbol(),
            Some(c) if c == '+' || c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!("unexpected value start `{c}`"))),
            None => Err(Error::new("expected value, found end of input")),
        }
    }

    fn parse_symbol(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphabetic()) {
            self.pos += 1;
        }
        let word: String = self.chars[start..self.pos].iter().collect();
        match word.as_str() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            "inf" => Ok(Value::Float(f64::INFINITY)),
            "nan" => Ok(Value::Float(f64::NAN)),
            other => Err(Error::new(format!("unknown symbol `{other}`"))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.peek(), Some('+' | '-')) {
            self.advance();
        }
        // `-inf` / `+inf` / `nan` with sign.
        if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic()) {
            let sign = if self.chars[start] == '-' { -1.0 } else { 1.0 };
            return match self.parse_symbol()? {
                Value::Float(f) => Ok(Value::Float(sign * f)),
                other => Err(Error::new(format!("unexpected signed symbol {other:?}"))),
            };
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' | '_' => {
                    self.pos += 1;
                }
                '.' | 'e' | 'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some('+' | '-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .filter(|&&c| c != '_')
            .collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid float `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }
}
