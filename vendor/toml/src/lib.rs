//! Offline TOML codec for the vendored value-tree serde.
//!
//! Supports the TOML subset the workspace's worksheets and reports use:
//! comments, bare/quoted keys, strings with basic escapes, integers
//! (with `_` separators), floats (including exponents and `inf`/`nan`),
//! booleans, (possibly multi-line) arrays, inline tables, `[table]` and
//! `[[array-of-tables]]` headers with dotted paths.
//!
//! Serialization follows the upstream crate's conventions that the tests
//! depend on: scalar keys before sub-tables, nested tables as `[a.b]`
//! headers, floats always printed with a decimal point or exponent
//! (`150000000.0`), `None` fields omitted.

pub mod de;
pub mod ser;

pub use de::from_str;
pub use ser::{to_string, to_string_pretty};

#[cfg(test)]
mod tests {
    use serde::Value;

    #[test]
    fn parse_basic_document() {
        let text = r#"
            # worksheet
            name = "pdf-1d"   # trailing comment
            buffering = "Single"

            [dataset]
            elements_in = 512
            bytes_per_element = 4

            [comm]
            ideal_bandwidth = 1000000000.0
            alpha_write = 0.37
        "#;
        let v = crate::de::parse_document(text).unwrap();
        assert_eq!(v.get("name"), Some(&Value::Str("pdf-1d".into())));
        assert_eq!(v.get("buffering"), Some(&Value::Str("Single".into())));
        let dataset = v.get("dataset").unwrap();
        assert_eq!(dataset.get("elements_in"), Some(&Value::Int(512)));
        let comm = v.get("comm").unwrap();
        assert_eq!(comm.get("ideal_bandwidth"), Some(&Value::Float(1.0e9)));
        assert_eq!(comm.get("alpha_write"), Some(&Value::Float(0.37)));
    }

    #[test]
    fn render_emits_scalars_before_tables() {
        let v = Value::Map(vec![
            ("outer".into(), Value::Int(1)),
            (
                "inner".into(),
                Value::Map(vec![
                    ("a".into(), Value::Float(150000000.0)),
                    ("s".into(), Value::Str("x".into())),
                ]),
            ),
            ("trailing".into(), Value::Bool(true)),
        ]);
        let text = crate::ser::render_document(&v).unwrap();
        let reparsed = crate::de::parse_document(&text).unwrap();
        assert_eq!(reparsed.get("outer"), Some(&Value::Int(1)));
        assert_eq!(reparsed.get("trailing"), Some(&Value::Bool(true)));
        assert_eq!(
            reparsed.get("inner").unwrap().get("a"),
            Some(&Value::Float(150000000.0))
        );
        assert!(
            text.contains("150000000.0"),
            "float must keep decimal point: {text}"
        );
    }

    #[test]
    fn arrays_and_inline_tables() {
        let text = r#"
            points = [[1, 0.9], [1024, 0.37]]
            multi = [
                1,
                2,
                3,
            ]
            inline = { x = 1, y = "two" }
        "#;
        let v = crate::de::parse_document(text).unwrap();
        match v.get("points").unwrap() {
            Value::Seq(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0], Value::Seq(vec![Value::Int(1), Value::Float(0.9)]));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            v.get("multi"),
            Some(&Value::Seq(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))
        );
        assert_eq!(
            v.get("inline").unwrap().get("y"),
            Some(&Value::Str("two".into()))
        );
    }

    #[test]
    fn array_of_tables() {
        let text = "
            [[run]]
            id = 1
            [[run]]
            id = 2
        ";
        let v = crate::de::parse_document(text).unwrap();
        match v.get("run").unwrap() {
            Value::Seq(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].get("id"), Some(&Value::Int(2)));
            }
            other => panic!("expected array of tables, got {other:?}"),
        }
    }

    #[test]
    fn unparseable_input_errors() {
        assert!(crate::de::parse_document("key = ").is_err());
        assert!(crate::de::parse_document("= 3").is_err());
        assert!(crate::de::parse_document("key = \"unterminated").is_err());
    }
}
