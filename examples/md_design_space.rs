//! The §5.2 design-space lesson, made executable.
//!
//! The paper cites three published FPGA molecular-dynamics implementations
//! whose reported speedups span **0.29x to 46x** — proof that "various designs
//! for an application can have radically different execution times", and that
//! RAT's job is to rank the candidates *you* are considering before any is
//! built. This example reconstructs three plausible MD design styles as RAT
//! worksheets and lets the comparison module rank them:
//!
//! 1. a chatty design that round-trips the whole system every step with
//!    little parallelism (the 0.29x-style outcome),
//! 2. a modest 2004-era design (the ~2x style),
//! 3. an aggressive on-chip design that transfers once and runs wide
//!    (the ~46x style).
//!
//! ```sh
//! cargo run --example md_design_space
//! ```

use rat::core::comparison::DesignComparison;
use rat::core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat::core::quantity::{Freq, Seconds, Throughput};
use rat::core::solve;

fn main() {
    let t_soft = Seconds::new(5.78);
    let n: u64 = 16_384;

    // Style 1: naive offload. Every one of 10 buffered passes ships all state
    // both ways over a slow 33 MHz PCI bus and computes with modest
    // parallelism (25 ops/cycle at 66 MHz).
    let naive = RatInput {
        name: "naive offload (PCI, shallow)".into(),
        dataset: DatasetParams {
            elements_in: n,
            elements_out: n,
            bytes_per_element: 36,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(132.0e6),
            alpha_write: 0.5,
            alpha_read: 0.4,
        },
        comp: CompParams {
            ops_per_element: 164_000.0,
            throughput_proc: 25.0,
            fclock: Freq::from_hz(66.0e6),
        },
        software: SoftwareParams {
            t_soft,
            iterations: 10,
        },
        buffering: Buffering::Single,
    };

    // Style 2: the paper's own XD1000 design — one transfer, tuned 50
    // ops/cycle at 100 MHz.
    let paper = rat::apps::md::rat::rat_input(100.0e6);

    // Style 3: aggressive on-chip design — state resident on the FPGA across
    // timesteps (one initial load), deep systolic force pipeline sustaining
    // 200 ops/cycle at 100 MHz, double buffered.
    let aggressive = RatInput {
        name: "resident systolic (200 ops/cyc)".into(),
        dataset: DatasetParams {
            elements_in: n,
            elements_out: n,
            bytes_per_element: 36,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(500.0e6),
            alpha_write: 0.9,
            alpha_read: 0.9,
        },
        comp: CompParams {
            ops_per_element: 164_000.0,
            throughput_proc: 200.0,
            fclock: Freq::from_hz(100.0e6),
        },
        software: SoftwareParams {
            t_soft,
            iterations: 1,
        },
        buffering: Buffering::Double,
    };

    let cmp = DesignComparison::compare(&[naive.clone(), paper.clone(), aggressive.clone()])
        .expect("valid designs");
    println!("{}", cmp.render());
    println!(
        "The paper's cited MD implementations spanned 0.29x-46x; this slate spans \
         {:.2}x-{:.1}x for the same reasons (platform, parallelism, residency).\n",
        cmp.ranked.last().expect("non-empty").speedup,
        cmp.best().speedup
    );

    // What would rescue the naive design? The solvers say: nothing reachable.
    println!("Post-mortem on the naive design:");
    match solve::required_throughput_proc(&naive, 2.0) {
        Ok(v) => println!("  2x would need {v:.0} ops/cycle"),
        Err(e) => println!("  2x: {e}"),
    }
    println!(
        "  its communication-bound ceiling is {:.2}x — no amount of parallelism \
         rescues a design that ships the system every step over PCI.",
        solve::max_speedup(&naive).expect("valid design")
    );
}
