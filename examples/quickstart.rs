//! Quickstart: run a RAT worksheet and the full three-test methodology.
//!
//! Reproduces the paper's §4 walkthrough — the 1-D PDF estimation design on a
//! Nallatech H101 (Virtex-4 LX100) — in a few lines of library calls.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rat::apps::pdf1d;
use rat::core::methodology::{AmenabilityTest, Requirements};
use rat::core::worksheet::Worksheet;

fn main() {
    // 1. The worksheet input: the paper's Table 2 (at the optimistic 150 MHz
    //    clock assumption).
    let input = pdf1d::rat_input(150.0e6);

    // 2. The throughput test: Equations (1)-(11) in one call.
    let report = Worksheet::new(input.clone())
        .analyze()
        .expect("valid worksheet");
    println!("{}", report.render());

    // 3. The paper evaluates three candidate clocks because the achievable
    //    frequency is unknowable before place-and-route.
    println!("Across candidate clocks (Table 3's predicted columns):");
    for r in Worksheet::new(input.clone())
        .analyze_clocks(&[75.0, 100.0, 150.0].map(rat::core::quantity::Freq::from_mhz))
        .expect("valid worksheet")
    {
        println!(
            "  {:>3.0} MHz: t_comp {:.2e} s, t_RC {:.2e} s, speedup {:.1}x",
            r.input.comp.fclock.mhz(),
            r.throughput.t_comp.seconds(),
            r.throughput.t_rc.seconds(),
            r.speedup
        );
    }

    // 4. The full Figure-1 methodology pass: throughput gate, then resources
    //    (precision was settled separately at 18-bit fixed point; see the
    //    precision_study example).
    let pass = AmenabilityTest::new(
        input,
        Requirements {
            min_speedup: 10.0,
            reject_routing_strain: false,
        },
    )
    .with_resources(pdf1d::design().resource_report())
    .evaluate()
    .expect("valid worksheet");
    println!("\n{}", pass.render());

    // 5. And the validation the paper had to build hardware for: a simulated
    //    execution of the Figure-3 design on the simulated platform.
    let measured = pdf1d::design().simulate(150.0e6);
    println!(
        "Simulated 'actual' at 150 MHz: t_comm/iter {:.2e} s, t_comp/iter {:.2e} s, \
         total {:.2e} s, speedup {:.1}x (paper measured 7.8x)",
        measured.comm_per_iter().as_secs_f64(),
        measured.comp_per_iter().as_secs_f64(),
        measured.total.as_secs_f64(),
        pdf1d::T_SOFT / measured.total.as_secs_f64()
    );
}
