//! The molecular-dynamics tuning story (paper §5.2).
//!
//! MD's per-molecule work is data-dependent, so `throughput_proc` cannot be
//! read off the algorithm. The paper inverts the problem: pick the desired
//! speedup (~10x), solve for the ops/cycle it demands, and let that number
//! tell the designer how much parallelism the architecture must deliver.
//!
//! ```sh
//! cargo run --release --example md_tuning
//! ```

use rat::apps::md;
use rat::core::solve;
use rat::core::worksheet::Worksheet;

fn main() {
    let input = md::rat::rat_input(100.0e6);

    // 1. Treat throughput_proc as the unknown: what does a 10x goal demand?
    println!("Inverse solve on the Table-8 worksheet (100 MHz):");
    for target in [2.0, 5.0, 10.7, 20.0, 50.0] {
        match solve::required_throughput_proc(&input, target) {
            Ok(req) => println!("  {target:>5.1}x  needs {req:>7.1} ops/cycle"),
            Err(e) => println!("  {target:>5.1}x  {e}"),
        }
    }
    let ceiling = solve::max_speedup(&input).expect("valid input");
    println!("  ceiling (infinitely fast kernel): {ceiling:.0}x\n");

    // 2. The paper's answer: ~50 ops/cycle for ~10x. What does 50 concurrent
    //    operations *mean*? Substantial data parallelism: several molecules'
    //    force kernels in flight simultaneously.
    let tuned = solve::required_throughput_proc(&input, 10.7).expect("feasible");
    println!(
        "The ~10x goal demands {tuned:.0} ops/cycle — the paper: 'substantial data \
         parallelism and functional pipelining must be achieved'.\n"
    );

    // 3. Prediction with the tuned value (Table 9's predicted columns).
    for r in Worksheet::new(input)
        .analyze_clocks(&[75.0, 100.0, 150.0].map(rat::core::quantity::Freq::from_mhz))
        .expect("valid worksheet")
    {
        println!(
            "  predicted @ {:>3.0} MHz: t_comp {:.2e} s, speedup {:.1}x",
            r.input.comp.fclock.mhz(),
            r.throughput.t_comp.seconds(),
            r.speedup
        );
    }

    // 4. Ground truth: build the design model over an actual 16,384-molecule
    //    dataset (neighbor counts and all) and execute it on the simulated
    //    XD1000. Use the analytic workload model in debug builds.
    let design = if cfg!(debug_assertions) {
        md::hw::MdDesign::paper_scale_analytic()
    } else {
        md::hw::MdDesign::paper_scale()
    };
    println!(
        "\nDataset reality: {:.0} ops/molecule (worksheet estimated 164000), \
         mean {:.0} near neighbors",
        design.ops_per_element(),
        design.mean_near_neighbors()
    );
    let m = design.simulate(100.0e6);
    let speedup = md::rat::T_SOFT / m.total.as_secs_f64();
    println!(
        "Simulated 'actual' @ 100 MHz: t_comm {:.2e} s (write-back streamed), \
         t_comp {:.2e} s, total {:.2e} s, speedup {speedup:.1}x (paper measured 6.6x)",
        m.comm_per_iter().as_secs_f64(),
        m.comp_per_iter().as_secs_f64(),
        m.total.as_secs_f64(),
    );
    println!(
        "The gap vs the predicted 10.7x is the data-dependent stall budget the tuned \
         estimate couldn't see — the design sustains ~61% of its structural 50 ops/cycle."
    );
}
