//! Platform characterization and the 2-D PDF's communication surprise.
//!
//! The paper derives its alpha parameters from a microbenchmark at one
//! transfer size (§4.2) and warns — after the fact — that the 2-D PDF's
//! 256 KB result reads behaved six times worse than that alpha predicted.
//! This example walks the whole trap: characterize the bus, predict, execute,
//! compare, and show the overlap schedules.
//!
//! ```sh
//! cargo run --example platform_validation
//! ```

use rat::apps::{pdf1d, pdf2d};
use rat::core::worksheet::Worksheet;
use rat::sim::microbench::{alpha_table, render_alpha_table, standard_sizes};
use rat::sim::{catalog, Direction};

fn main() {
    let platform = catalog::nallatech_h101();

    // 1. Characterize the interconnect the way the paper does.
    let table = alpha_table(&platform.interconnect, &standard_sizes());
    println!(
        "Microbenchmark-derived alpha(size) for {}:\n",
        platform.name
    );
    println!("{}", render_alpha_table(&table));

    // 2. The trap: the paper's worksheet used alpha_read = 0.16, measured at
    //    the 1-D PDF's 2 KB transfer size. The 2-D design reads 256 KB.
    let at_2k = platform.interconnect.transfer_time(2048, Direction::Read);
    let at_256k = platform
        .interconnect
        .transfer_time(262_144, Direction::Read);
    let alpha_model = 262_144.0 / (0.16 * 1.0e9);
    println!(
        "Read 2 KB: {at_2k}   read 256 KB: {at_256k}   (2 KB-alpha model predicts {:.2e} s \
         for 256 KB — off by {:.1}x)\n",
        alpha_model,
        at_256k.as_secs_f64() / alpha_model
    );

    // 3. Prediction vs simulated execution for both PDF designs at 150 MHz.
    for (name, predicted, measured, t_soft) in [
        (
            "1-D PDF",
            Worksheet::new(pdf1d::rat_input(150.0e6))
                .analyze()
                .expect("valid"),
            pdf1d::design().simulate(150.0e6),
            pdf1d::T_SOFT,
        ),
        (
            "2-D PDF",
            Worksheet::new(pdf2d::rat_input(150.0e6))
                .analyze()
                .expect("valid"),
            pdf2d::design().simulate(150.0e6),
            pdf2d::T_SOFT,
        ),
    ] {
        let sim_speedup = t_soft / measured.total.as_secs_f64();
        println!(
            "{name}: predicted t_comm {:.2e} s vs measured {:.2e} s ({:.1}x miss); \
             predicted speedup {:.1}x vs measured {:.1}x",
            predicted.throughput.t_comm.seconds(),
            measured.comm_per_iter().as_secs_f64(),
            measured.comm_per_iter().as_secs_f64() / predicted.throughput.t_comm.seconds(),
            predicted.speedup,
            sim_speedup
        );
    }

    // 4. The schedule itself: first iterations of the 1-D design, single
    //    buffered, straight from the simulator trace (Figure-2 style).
    let run = rat::sim::AppRun::builder()
        .iterations(3)
        .elements_per_iter(512)
        .input_bytes_per_iter(2048)
        .output_bytes_per_iter(1024)
        .buffer_mode(rat::sim::BufferMode::Single)
        .build();
    let m = rat::sim::Platform::new(platform)
        .execute(
            &pdf1d::design().kernel(),
            &run,
            rat_core::quantity::Freq::from_hz(150.0e6),
        )
        .expect("valid run");
    println!(
        "\nFirst three iterations, single buffered:\n{}",
        m.trace.render_gantt(72)
    );
}
