//! Guided design-space optimization with `rat optimize`.
//!
//! Instead of sweeping every axis exhaustively, the cross-entropy search
//! samples candidate designs (clock, parallelism, buffering, device,
//! precision), evaluates each generation through the batched analytic
//! kernels, gates them through the Eq. (9)–(11) resource test, and adapts
//! toward the feasible elite. The result is a Pareto front of speedup vs
//! computation utilization vs resource pressure — reproducible bit for bit
//! from the seed, at any job count.
//!
//! ```sh
//! cargo run --example guided_optimization
//! ```

use rat::core::engine::Engine;
use rat::core::optimize::{optimize, OptimizeConfig, OptimizeSpace};
use rat::core::resources::device::virtex4_lx100;
use rat::fixed::QFormat;

fn main() {
    // 1. The paper's 1-D PDF design (Table 2), searched over the default
    //    space: clocks from half the worksheet's 150 MHz up to it,
    //    parallelism from one op/cycle up to the worksheet's 20, both
    //    buffering disciplines, the full device catalog, and the paper's
    //    18/32-bit fixed-point candidates.
    let base = rat::apps::pdf1d::rat_input(150.0e6);
    let engine = Engine::default();
    let space = OptimizeSpace::around(base.clone());
    let config = OptimizeConfig {
        seed: 2007,
        generations: 12,
        population: 128,
        // (OptimizeConfig::default() searches harder; this budget already
        // converges for the paper worksheets — see the bench evidence.)
    };
    let outcome = optimize(&engine, &space, &config).expect("pdf1d space has feasible points");
    println!("{}", outcome.render());
    println!(
        "{} evaluations, {} feasible, {} front points — same seed, same front, \
         at 1, 2, or 8 jobs.\n",
        outcome.evals,
        outcome.feasible_evals,
        outcome.front.len()
    );

    // 2. Constrain the search to the paper's actual part (Virtex-4 LX100 on
    //    the Nallatech H101) and 18-bit arithmetic: the front now reflects
    //    what that board can really hold.
    let constrained = OptimizeSpace {
        devices: vec![virtex4_lx100()],
        precisions: vec![QFormat::signed(0, 17).expect("Q0.17 is valid")],
        ..OptimizeSpace::around(base)
    };
    let outcome = optimize(&engine, &constrained, &config).expect("LX100 fits the 1-D PDF");
    let best = outcome.best();
    println!("On the paper's own hardware: {}", best.display_name());
    println!(
        "  speedup {:.2}x, {} of {} DSPs, fits: {}\n",
        best.objectives.speedup,
        best.resources.estimate.dsp,
        best.resources.device.dsp_blocks,
        best.resources.fits
    );

    // 3. Not every design has a feasible point: molecular dynamics buffers
    //    its whole 16384-particle dataset, which exceeds every catalog
    //    device's block RAM — the search reports *that*, not a fantasy
    //    front.
    let md = rat::apps::md::rat::rat_input(100.0e6);
    let md_space = OptimizeSpace::around(md);
    match optimize(&engine, &md_space, &config) {
        Ok(_) => unreachable!("md's full-dataset buffer cannot fit"),
        Err(e) => println!("Molecular dynamics: {e}"),
    }
}
