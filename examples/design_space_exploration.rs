//! Design-space exploration with sweeps, sensitivity, and uncertainty.
//!
//! RAT is meant to be applied iteratively "until a suitable version of the
//! algorithm is formulated". This example scripts that loop for the 2-D PDF
//! design: find which parameter the speedup actually depends on, sweep it,
//! quantify the risk band from uncertain inputs, and check what double
//! buffering would buy.
//!
//! ```sh
//! cargo run --example design_space_exploration
//! ```

use rat::apps::pdf2d;
use rat::core::params::Buffering;
use rat::core::sensitivity;
use rat::core::sweep::{sweep, SweepParam};
use rat::core::uncertainty::{propagate, ParamRange};
use rat::core::worksheet::Worksheet;

fn main() {
    let input = pdf2d::rat_input(150.0e6);

    // 1. Sensitivity: which estimate deserves measurement effort?
    let sens = sensitivity::analyze(&input).expect("valid input");
    println!("{}", sens.render());
    println!(
        "Dominant parameter: {} — the 2-D PDF is compute-bound on paper, so clock and \
         ops/cycle dominate. (The paper's actual bottleneck surprise was alpha_read; \
         see the platform_validation example.)\n",
        sens.dominant().expect("non-empty").param.label()
    );

    // 2. Sweep the clock across the plausible range.
    let clocks: Vec<f64> = (3..=8).map(|i| i as f64 * 25.0e6).collect();
    let by_clock = sweep(&input, SweepParam::Fclock, &clocks).expect("valid sweep");
    println!("{}", by_clock.render());
    match by_clock.first_meeting(5.0) {
        Some(p) => println!("First clock reaching 5x: {:.0} MHz\n", p.value / 1e6),
        None => println!("No clock in range reaches 5x\n"),
    }

    // 3. Sweep the parallelism (pipelines) via throughput_proc.
    let rates: Vec<f64> = [24.0, 48.0, 72.0, 96.0, 144.0, 288.0].to_vec();
    let by_rate = sweep(&input, SweepParam::ThroughputProc, &rates).expect("valid sweep");
    println!("{}", by_rate.render());

    // 4. Uncertainty: clock anywhere in 75-150 MHz, achieved ops/cycle
    //    anywhere from the conservative 48 to the structural 72.
    let ranges = [
        ParamRange::new(SweepParam::Fclock, 75.0e6, 150.0e6),
        ParamRange::new(SweepParam::ThroughputProc, 48.0, 72.0),
    ];
    let dist = propagate(&input, &ranges, 20_000, 2007).expect("valid ranges");
    println!("{}", dist.render());

    // 5. Would double buffering help? (Compute-bound: barely.)
    let sb = Worksheet::new(input.clone()).analyze().expect("valid");
    let db = Worksheet::new(input.with_buffering(Buffering::Double))
        .analyze()
        .expect("valid");
    println!(
        "Buffering: single {:.2}x vs double {:.2}x — overlap buys {:.1}% because the \
         predicted communication share is only {:.0}%.",
        sb.speedup,
        db.speedup,
        (db.speedup / sb.speedup - 1.0) * 100.0,
        sb.throughput.util_comm * 100.0
    );
}
