//! Applying RAT to a brand-new design — the workflow a user follows for an
//! application this library has never seen.
//!
//! The paper's element examples include "a single character in a
//! string-matching algorithm"; this example drafts a DNA pattern-scanner
//! design on paper, runs every RAT test against the generic PCIe platform,
//! iterates once (the first design bounces), and finishes with a simulated
//! sanity run — without touching any of the built-in case studies.
//!
//! ```sh
//! cargo run --example new_application
//! ```

use rat::core::methodology::{AmenabilityTest, Requirements, Verdict};
use rat::core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat::core::resources::{estimate, FpgaDevice, LogicKind, ResourceReport};
use rat::core::solve;
use rat::core::worksheet::Worksheet;
use rat::sim::{catalog, AppRun, BufferMode, PipelineSpec, PipelinedKernel, Platform, StallModel};

fn main() {
    // ------- 1. Design on paper -------------------------------------------
    // Scan a 256 MB reference stream against 64 patterns of length 32.
    // Element = one input character (1 byte). Each character is compared
    // against all 64 pattern automata: ~2 ops per (char, pattern) = 128
    // ops/element. A systolic array of 64 pattern units retires one character
    // against every pattern each cycle: structural 128 ops/cycle; assume 112
    // after stalls (the RAT conservatism discipline). Output: match records,
    // negligible volume. Software baseline: 6.1 s (a memchr-style scanner).
    let chars_per_block: u64 = 4 << 20; // 4 MiB blocks
    let total_chars: u64 = 256 << 20;
    let design = RatInput {
        name: "DNA pattern scanner".into(),
        dataset: DatasetParams {
            elements_in: chars_per_block,
            elements_out: 1024, // match records per block, 1 B elements
            bytes_per_element: 1,
        },
        // Derive alphas from the platform's microbenchmark at our block size,
        // exactly as §4.2 prescribes.
        comm: derive_comm(chars_per_block),
        comp: CompParams {
            ops_per_element: 128.0,
            throughput_proc: 112.0,
            fclock: rat::core::quantity::Freq::from_hz(200.0e6),
        },
        software: SoftwareParams {
            t_soft: rat::core::quantity::Seconds::new(6.1),
            iterations: total_chars / chars_per_block,
        },
        buffering: Buffering::Double,
    };

    // ------- 2. Throughput test -------------------------------------------
    let report = Worksheet::new(design.clone())
        .analyze()
        .expect("valid design");
    println!("{}", report.render_performance());

    // ------- 3. Resource test on a custom device --------------------------
    let device = FpgaDevice {
        name: "Generic mid-range FPGA".into(),
        dsp_name: "DSP blocks".into(),
        dsp_blocks: 288,
        bram_blocks: 480,
        logic_cells: 120_000,
        logic_kind: LogicKind::Luts,
        native_mult_width: 18,
    };
    // 64 pattern units: no multipliers (comparators only), one BRAM of
    // automaton state each, ~900 LUTs each plus I/O framing.
    let usage = estimate::ResourceEstimate {
        dsp: 0,
        bram: 64 + 12,
        logic: 64 * 900 + 4_000,
    };
    let resources = ResourceReport::analyze(device, usage);
    println!("{}", resources.render());

    // ------- 4. The Figure-1 pass, iterated --------------------------------
    let requirements = Requirements {
        min_speedup: 20.0,
        reject_routing_strain: true,
    };
    let pass = AmenabilityTest::new(design.clone(), requirements)
        .with_resources(resources.clone())
        .evaluate()
        .expect("valid design");
    println!("{}", pass.render());

    if let Verdict::Revise(_) = pass.verdict {
        // The 20x goal missed. What would it take? Ask the solvers.
        println!("Revision guidance:");
        match solve::required_throughput_proc(&design, 20.0) {
            Ok(v) => println!(
                "  - reach {v:.0} ops/cycle (e.g. {} pattern units)",
                (v / 2.0).ceil()
            ),
            Err(e) => println!("  - infeasible via parallelism: {e}"),
        }
        match solve::required_fclock(&design, 20.0) {
            Ok(v) => println!("  - or clock the 64-unit array at {:.0} MHz", v.mhz()),
            Err(e) => println!("  - infeasible via clock: {e}"),
        }
        println!(
            "  - ceiling on this platform: {:.0}x\n",
            solve::max_speedup(&design).expect("valid design")
        );

        // The solver's answer (~282 units) is far beyond the device: under
        // the 80% routing-strain ceiling the LUT budget holds ~96 units.
        // The 20x goal is unreachable on this part — exactly the insight RAT
        // exists to deliver before anyone writes RTL. Per the paper's §1 a
        // conservative break-even target is also legitimate, so revise to the
        // largest feasible array (96 units, structural 192, worksheet 168
        // ops/cycle) against a 5x requirement.
        println!("20x exceeds this device; revising to 96 units against a 5x goal.\n");
        let mut revised = design.clone();
        revised.comp.throughput_proc = 168.0;
        let revised_usage = estimate::ResourceEstimate {
            dsp: 0,
            bram: 96 + 12,
            logic: 96 * 900 + 4_000,
        };
        let revised_resources = ResourceReport::analyze(
            rat::core::resources::device::FpgaDevice {
                name: "Generic mid-range FPGA".into(),
                dsp_name: "DSP blocks".into(),
                dsp_blocks: 288,
                bram_blocks: 480,
                logic_cells: 120_000,
                logic_kind: LogicKind::Luts,
                native_mult_width: 18,
            },
            revised_usage,
        );
        let relaxed = Requirements {
            min_speedup: 5.0,
            reject_routing_strain: true,
        };
        let second = AmenabilityTest::new(revised.clone(), relaxed)
            .with_resources(revised_resources)
            .evaluate()
            .expect("valid design");
        println!("{}", second.render());

        // ------- 5. Simulated sanity run for the revised design ------------
        let kernel = PipelinedKernel::new(
            "pattern-scanner",
            PipelineSpec {
                lanes: 96,
                ops_per_lane_cycle: 2,
                fill_latency: 40,
                drain_latency: 8,
                stall: StallModel::Efficiency { efficiency: 0.9 },
            },
            128,
        );
        let run = AppRun::builder()
            .iterations(revised.software.iterations)
            .elements_per_iter(chars_per_block)
            .input_bytes_per_iter(chars_per_block)
            .output_bytes_per_iter(1024)
            .buffer_mode(BufferMode::Double)
            .build();
        let m = Platform::new(catalog::generic_pcie_gen2_x8())
            .execute(&kernel, &run, revised.comp.fclock)
            .expect("valid run");
        println!(
            "Simulated revised design: {:.3} s total, {:.1}x speedup (predicted {:.1}x), \
             channel busy {:.0}%",
            m.total.as_secs_f64(),
            revised.software.t_soft / m.total.as_secs_f64(),
            Worksheet::new(revised)
                .analyze()
                .expect("valid design")
                .speedup,
            m.channel_utilization() * 100.0
        );
    }
}

/// §4.2's procedure: probe the platform at the design's own transfer size.
fn derive_comm(block_bytes: u64) -> CommParams {
    let ic = catalog::generic_pcie_gen2_x8().interconnect;
    let probe = rat::sim::microbench::measure_alpha(&ic, block_bytes);
    CommParams {
        ideal_bandwidth: ic.ideal_bw,
        alpha_write: probe.alpha_write,
        alpha_read: probe.alpha_read,
    }
}
