//! The numerical-precision study behind the paper's 18-bit decision.
//!
//! §4.2: "18-bit and 32-bit fixed point along with 32-bit floating point were
//! considered ... the maximum error percentage was only ~2% for 18-bit fixed
//! point ... Ultimately 18-bit fixed point was chosen so that only one Xilinx
//! 18x18 MAC unit would be needed per multiplication."
//!
//! This example reruns that study against the bit-accurate fixed-point
//! datapath: sweep candidate formats, measure each one's error on a real
//! workload, cost each in DSPs, and let the precision test pick.
//!
//! ```sh
//! cargo run --release --example precision_study
//! ```

use rat::apps::datagen;
use rat::apps::pdf::fixed::{precision_eval, FixedParzen1d};
use rat::apps::pdf::{bin_centers, BANDWIDTH};
use rat::core::precision::precision_test;
use rat::fixed::QFormat;

fn main() {
    let samples = datagen::bimodal_samples(4096, 99);
    let bins = bin_centers();

    // Candidate formats: 12 through 32 bits of signed sub-unity fixed point.
    let candidates: Vec<QFormat> = [11u32, 13, 15, 17, 20, 23, 27, 31]
        .iter()
        .map(|&f| QFormat::signed(0, f).expect("valid format"))
        .collect();

    // Tolerance: the paper's ~2-3% maximum error budget.
    let report = precision_test(&candidates, 0.03, 18, |fmt| {
        precision_eval(fmt, &samples, &bins, BANDWIDTH)
    });
    println!("{}", report.render());

    match report.chosen_candidate() {
        Some(c) => {
            println!(
                "Chosen: {} ({} bits, {} DSP48 per multiply) — max error {:.2}%",
                c.format,
                c.format.total_bits(),
                c.dsps_per_mult,
                c.stats.max_rel_error() * 100.0
            );
            println!(
                "The 32-bit alternative would double the multiplier budget for no \
                 perceptible accuracy gain — the paper's exact reasoning."
            );
        }
        None => println!("No candidate met the tolerance — redesign the datapath."),
    }

    // Show the error-vs-width curve in more detail around the knee.
    println!("\nError vs width (max relative error on the estimated PDF):");
    for frac in [9u32, 11, 13, 15, 17, 19, 23] {
        let fmt = QFormat::signed(0, frac).expect("valid format");
        let stats = FixedParzen1d::with_format(fmt, BANDWIDTH).error_vs_reference(&samples, &bins);
        println!(
            "  {:>6} ({:>2} bits): {:>8.4}%  (SNR {:>5.1} dB)",
            fmt.to_string(),
            fmt.total_bits(),
            stats.max_rel_error() * 100.0,
            stats.snr_db()
        );
    }
}
