//! The paper's future work, executed: multi-FPGA scaling and streaming mode.
//!
//! §6 flags "systems containing multiple FPGAs being increasingly deployed";
//! §3.1 notes the framework "can be adjusted for streaming applications".
//! Both extensions share one hard constraint the paper keeps emphasizing: the
//! host interconnect is a single serialized resource, so every scaling story
//! ends at the communication wall.
//!
//! ```sh
//! cargo run --example scaling_and_streaming
//! ```

use rat::apps::pdf1d;
use rat::core::multifpga;
use rat::core::params::Buffering;
use rat::core::streaming::{self, ChannelDuplex};
use rat::sim::{catalog, AppRun, BufferMode, Platform};

fn main() {
    let input = pdf1d::rat_input(150.0e6).with_buffering(Buffering::Double);

    // 1. Analytic scaling curve across device counts.
    let curve = multifpga::scaling_curve(&input, 32).expect("valid input");
    println!("{}", curve.render());
    let sat = multifpga::saturating_devices(&input).expect("valid input");
    println!(
        "The shared channel caps scaling at {sat} devices; beyond that, speedup is the \
         communication wall ({:.0}x).\n",
        rat::core::solve::max_speedup(&input).expect("valid input")
    );

    // 2. Cross-check against the simulator: replicate the Figure-3 kernel
    //    on the simulated platform and watch the same knee appear (the full
    //    platform model includes per-transfer setup costs the analytic curve
    //    ignores, so its wall arrives earlier — that gap is the lesson).
    println!("Simulated scaling on the Nallatech model (with setup/host overheads):");
    let platform = Platform::new(catalog::nallatech_h101());
    let kernel = pdf1d::design().kernel();
    for devices in [1u32, 2, 4, 8, 16, 32] {
        let run = AppRun::builder()
            .iterations(400)
            .elements_per_iter(512)
            .input_bytes_per_iter(2048)
            .output_bytes_per_iter(1024)
            .buffer_mode(BufferMode::Double)
            .parallel_kernels(devices)
            .build();
        let m = platform
            .execute(&kernel, &run, rat::core::quantity::Freq::from_hz(150.0e6))
            .expect("valid run");
        println!(
            "  {devices:>2} device(s): total {:.3e} s, speedup {:>5.1}x, channel busy {:>4.0}%",
            m.total.as_secs_f64(),
            pdf1d::T_SOFT / m.total.as_secs_f64(),
            m.channel_utilization() * 100.0
        );
    }

    // 3. Streaming mode: no buffered round trips at all.
    println!();
    let half = streaming::analyze(&input, ChannelDuplex::Half).expect("valid input");
    println!("{}", half.render());
    println!(
        "Streaming sustains {:.2e} elements/s ({} bound); the batch double-buffered \
         model gives {:.2e} elements/s.",
        half.sustained_rate,
        match half.bottleneck {
            streaming::StreamBottleneck::Channel => "channel",
            streaming::StreamBottleneck::Compute => "compute",
        },
        (input.dataset.elements_in * input.software.iterations) as f64
            / rat::core::throughput::t_rc_double(&input).seconds(),
    );
}
