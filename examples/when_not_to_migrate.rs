//! The negative result: RAT talking a team *out* of a migration.
//!
//! The paper's introduction is blunt about the stakes — a migration that
//! cannot meet its speedup goal wastes months of development. This example
//! runs the bitonic-sort case study (the paper's "value in an array to be
//! sorted" element example) through the full methodology and watches every
//! tool agree that the migration should not happen, then quantifies the
//! engineering cost RAT just saved via the break-even analysis.
//!
//! ```sh
//! cargo run --example when_not_to_migrate
//! ```

use rat::apps::sort;
use rat::core::breakeven::{BreakEven, MigrationCost};
use rat::core::methodology::{AmenabilityTest, Requirements};
use rat::core::solve;
use rat::core::worksheet::Worksheet;

fn main() {
    let input = sort::rat::rat_input(150.0e6);

    // 1. The worksheet: sorting is everything the PDF kernels are not.
    let report = Worksheet::new(input.clone())
        .analyze()
        .expect("valid worksheet");
    println!("{}", report.render_performance());
    println!(
        "Communication carries {:.0}% of every iteration — a sorting network does only \
         78 compare-exchanges per key, but every key crosses the bus twice.\n",
        report.throughput.util_comm * 100.0
    );

    // 2. The inverse solvers: no knob reaches 10x.
    println!("Can anything reach 10x?");
    for (label, result) in [
        (
            "more parallelism",
            solve::required_throughput_proc(&input, 10.0).map(|v| format!("{v:.0} ops/cycle")),
        ),
        (
            "faster clock    ",
            solve::required_fclock(&input, 10.0).map(|v| format!("{:.0} MHz", v.mhz())),
        ),
        (
            "better interconnect",
            solve::required_alpha_scale(&input, 10.0).map(|v| format!("{v:.1}x alpha")),
        ),
    ] {
        match result {
            Ok(v) => println!("  {label}: yes, with {v}"),
            Err(e) => println!("  {label}: no — {e}"),
        }
    }
    println!(
        "  hard ceiling: {:.1}x (communication-bound wall)\n",
        solve::max_speedup(&input).expect("valid input")
    );

    // 3. The methodology gate bounces it.
    let pass = AmenabilityTest::new(
        input.clone(),
        Requirements {
            min_speedup: 10.0,
            reject_routing_strain: true,
        },
    )
    .with_resources(sort::rat::design().resource_report())
    .evaluate()
    .expect("valid input");
    println!("{}", pass.render());

    // 4. Validation: the simulator agrees (it lands even lower than the
    //    prediction, since 1,024 round trips pay per-transfer overheads).
    let m = sort::rat::design().simulate(150.0e6);
    let measured = sort::rat::T_SOFT / m.total.as_secs_f64();
    println!(
        "Simulated execution: {:.3e} s total, {measured:.1}x speedup (predicted {:.1}x).\n",
        m.total.as_secs_f64(),
        report.speedup
    );

    // 5. What did the 30-minute worksheet save? Even if the modest speedup
    //    were accepted, break-even on the engineering runs to years.
    let be = BreakEven::analyze(
        &input,
        &MigrationCost {
            development_hours: 400.0,
            runs_per_day: 1_000.0,
        },
    )
    .expect("valid input");
    println!("{}", be.render());
    println!(
        "Verdict: do not migrate. (And if sorting is a stage of a larger pipeline, \
         leave it on the CPU — see the multistage module.)"
    );
}
