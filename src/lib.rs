//! # RAT — RC Amenability Test
//!
//! A Rust reproduction of *"RAT: A Methodology for Predicting Performance in
//! Application Design Migration to FPGAs"* (Holland, Nagarajan, Conger, Jacobs,
//! George — HPRCTA'07). This facade crate re-exports the workspace's public API:
//!
//! - [`core`] ([`rat_core`]): the RAT methodology — throughput equations,
//!   utilization metrics, inverse solvers, worksheets, precision and resource
//!   tests, sweeps, sensitivity and uncertainty analysis.
//! - [`sim`] ([`fpga_sim`]): a discrete-event FPGA co-processor platform
//!   simulator used as the validation substrate (interconnects, pipelined
//!   kernels, buffering schedules, traces).
//! - [`fixed`] ([`fixedpoint`]): fixed-point arithmetic with error and
//!   dynamic-range analysis, backing the numerical-precision test.
//! - [`apps`] ([`rat_apps`]): the paper's three case studies — 1-D/2-D
//!   Parzen-window PDF estimation and molecular dynamics.
//!
//! ## Quickstart
//!
//! ```
//! use rat::core::worksheet::Worksheet;
//!
//! // The paper's Table 2: 1-D PDF estimation on a Nallatech H101 (V4 LX100).
//! let input = rat::apps::pdf1d::rat_input(150.0e6);
//! let report = Worksheet::new(input).analyze().unwrap();
//! assert!(report.speedup > 10.0 && report.speedup < 11.0);
//! ```

pub use fixedpoint as fixed;
pub use fpga_sim as sim;
pub use rat_core as core;

/// The paper's case-study applications.
pub mod apps {
    pub use rat_apps::pdf::{pdf1d, pdf2d};
    pub use rat_apps::{datagen, md, pdf, sort};
}
