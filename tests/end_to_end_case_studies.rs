//! End-to-end validation of all three case studies: RAT predictions
//! (rat-core) against simulated platform executions (fpga-sim) of the
//! application designs (rat-apps), held to the paper's published bands.

use rat::apps::{md, pdf1d, pdf2d};
use rat::core::quantity::Freq;
use rat::core::worksheet::Worksheet;

/// Table 3's full shape: predicted 5.4/7.2/10.6 across clocks, measured 7.8 at
/// 150 MHz, communication the dominant error.
#[test]
fn pdf1d_prediction_vs_measurement() {
    let reports = Worksheet::new(pdf1d::rat_input(150.0e6))
        .analyze_clocks(&[75.0, 100.0, 150.0].map(Freq::from_mhz))
        .unwrap();
    let speedups: Vec<f64> = reports.iter().map(|r| r.speedup).collect();
    assert!((speedups[0] - 5.4).abs() < 0.06);
    assert!((speedups[2] - 10.6).abs() < 0.06);

    let m = pdf1d::design().simulate(150.0e6);
    let measured = pdf1d::T_SOFT / m.total.as_secs_f64();
    assert!((measured - 7.8).abs() < 0.3, "measured speedup {measured}");

    // Who wins and why: prediction optimistic, driven by comm error.
    let p150 = &reports[2];
    assert!(p150.speedup > measured);
    let comm_ratio = m.comm_per_iter().as_secs_f64() / p150.throughput.t_comm.seconds();
    assert!(
        (3.5..5.5).contains(&comm_ratio),
        "comm miss {comm_ratio:.2}x (paper: ~4.5x)"
    );
    let comp_ratio = m.comp_per_iter().as_secs_f64() / p150.throughput.t_comp.seconds();
    assert!(
        (0.95..1.15).contains(&comp_ratio),
        "comp miss {comp_ratio:.2}x (paper: ~1.06x)"
    );
}

/// Table 6's shape: predicted 3.5/4.6/6.9; measured communication ~6x the
/// prediction at 19% utilization; computation overestimated; net prediction
/// error smaller than the 1-D case's.
#[test]
fn pdf2d_prediction_vs_measurement() {
    let predicted = Worksheet::new(pdf2d::rat_input(150.0e6)).analyze().unwrap();
    assert!((predicted.speedup - 6.9).abs() < 0.06);

    let m = pdf2d::design().simulate(150.0e6);
    let comm = m.comm_per_iter().as_secs_f64();
    let comp = m.comp_per_iter().as_secs_f64();
    let comm_miss = comm / predicted.throughput.t_comm.seconds();
    assert!(
        (5.4..6.6).contains(&comm_miss),
        "comm miss {comm_miss:.2}x (paper: 6x)"
    );
    assert!(
        comp < predicted.throughput.t_comp.seconds(),
        "computation was overestimated"
    );
    let util = comm / (comm + comp);
    assert!(
        (0.17..0.21).contains(&util),
        "measured util_comm {util:.3} (paper: 19%)"
    );

    let measured = pdf2d::T_SOFT / m.total.as_secs_f64();
    let err_2d = (predicted.speedup - measured).abs() / measured;
    let err_1d = (10.6 - 7.8f64).abs() / 7.8;
    assert!(
        err_2d < err_1d,
        "2-D error {err_2d:.3} must beat 1-D's {err_1d:.3}"
    );
}

/// The paper's cross-study observation: 2-D is "more amenable" (1000x the
/// parallel work) yet delivers less measured speedup than 1-D on this
/// platform, because its communication demand grew faster than the channel.
#[test]
fn two_d_loses_to_one_d_in_practice() {
    let m1 = pdf1d::design().simulate(150.0e6);
    let m2 = pdf2d::design().simulate(150.0e6);
    let s1 = pdf1d::T_SOFT / m1.total.as_secs_f64();
    let s2 = pdf2d::T_SOFT / m2.total.as_secs_f64();
    assert!(s2 < s1, "2-D measured {s2:.2}x should trail 1-D's {s1:.2}x");
    // And the mechanism: 2-D spends a larger share of its makespan on the
    // channel (19% vs ~14%), and its absolute per-iteration comm is ~400x.
    assert!(m2.channel_utilization() > m1.channel_utilization());
    assert!(
        m2.comm_per_iter().as_secs_f64() > 300.0 * m1.comm_per_iter().as_secs_f64(),
        "2-D comm/iter should dwarf 1-D's"
    );
}

/// Table 9's shape: predicted 8.0/10.7/16.0; measured 6.6 at 100 MHz with
/// computation (not communication) carrying the whole error.
#[test]
fn md_prediction_vs_measurement() {
    let reports = Worksheet::new(md::rat::rat_input(100.0e6))
        .analyze_clocks(&[75.0, 100.0, 150.0].map(Freq::from_mhz))
        .unwrap();
    let speedups: Vec<f64> = reports.iter().map(|r| r.speedup).collect();
    assert!((speedups[0] - 8.0).abs() < 0.06);
    assert!((speedups[1] - 10.7).abs() < 0.06);
    assert!((speedups[2] - 16.0).abs() < 0.06);

    let design = if cfg!(debug_assertions) {
        md::hw::MdDesign::paper_scale_analytic()
    } else {
        md::hw::MdDesign::paper_scale()
    };
    // The data-dependent workload lands near the worksheet estimate.
    assert!(
        (design.ops_per_element() - 164_000.0).abs() / 164_000.0 < 0.02,
        "ops/molecule {}",
        design.ops_per_element()
    );

    let m = design.simulate(100.0e6);
    let measured = md::rat::T_SOFT / m.total.as_secs_f64();
    assert!(
        (measured - 6.6).abs() < 0.2,
        "measured speedup {measured} (paper: 6.6)"
    );
    // Computation dominates; write-back is streamed behind it.
    let comp = m.comp_per_iter().as_secs_f64();
    assert!(
        (comp - 8.79e-1).abs() / 8.79e-1 < 0.03,
        "t_comp {comp:.3e} (paper: 8.79e-1)"
    );
    let comm = m.comm_per_iter().as_secs_f64();
    assert!(
        (comm - 1.39e-3).abs() / 1.39e-3 < 0.05,
        "t_comm {comm:.3e} (paper: 1.39e-3)"
    );
    assert!(m.streamed_comm.as_secs_f64() > 0.0);
}

/// Full paper-scale MD with real neighbor counting — release mode only (the
/// debug-mode cost of 2.7e8 distance checks is minutes).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "paper-scale neighbor count; run with --release"
)]
fn md_paper_scale_counted_matches_analytic() {
    let counted = md::hw::MdDesign::paper_scale();
    let analytic = md::hw::MdDesign::paper_scale_analytic();
    let rel =
        (counted.ops_per_element() - analytic.ops_per_element()).abs() / analytic.ops_per_element();
    assert!(rel < 0.005, "counted vs analytic ops differ by {rel:.4}");
}

/// Cross-crate check of the fixed-point precision story on the real workload:
/// the paper's 18-bit choice passes a 3% budget, 10-bit busts it.
#[test]
fn precision_choice_holds_on_real_workload() {
    use rat::apps::pdf::fixed::precision_eval;
    use rat::apps::{datagen, pdf};
    use rat::fixed::QFormat;

    let samples = datagen::bimodal_samples(2048, 7);
    let bins = pdf::bin_centers();
    let e18 = precision_eval(
        QFormat::signed(0, 17).unwrap(),
        &samples,
        &bins,
        pdf::BANDWIDTH,
    );
    assert!(
        e18.within_rel_tolerance(0.03),
        "18-bit error {:.4}",
        e18.max_rel_error()
    );
    let e10 = precision_eval(
        QFormat::signed(0, 9).unwrap(),
        &samples,
        &bins,
        pdf::BANDWIDTH,
    );
    assert!(
        !e10.within_rel_tolerance(0.03),
        "10-bit error {:.4}",
        e10.max_rel_error()
    );
}
