//! The paper's §4.2 workflow, end to end: derive alpha parameters from
//! (simulated) microbenchmarks, feed them into the worksheet, and observe both
//! the success (1-D PDF) and the documented failure mode (2-D PDF's 256 KB
//! reads probed at 2 KB).

use rat::apps::{pdf1d, pdf2d};
use rat::core::worksheet::Worksheet;
use rat::sim::catalog;
use rat::sim::microbench::measure_alpha;

/// Microbenchmarking the simulated Nallatech at the 1-D PDF's transfer size
/// recovers the paper's Table-2 alphas.
#[test]
fn derived_alphas_match_table2() {
    let ic = catalog::nallatech_h101().interconnect;
    let probe = measure_alpha(&ic, 2048);
    assert!(
        (probe.alpha_write - 0.37).abs() < 0.02,
        "alpha_write {}",
        probe.alpha_write
    );
    assert!(
        (probe.alpha_read - 0.16).abs() < 0.02,
        "alpha_read {}",
        probe.alpha_read
    );
}

/// Feeding the derived (rather than hard-coded) alphas through the worksheet
/// reproduces the Table-3 prediction: the procedure is self-consistent.
#[test]
fn microbenchmark_driven_prediction_pipeline() {
    let ic = catalog::nallatech_h101().interconnect;
    let probe = measure_alpha(&ic, 2048);
    let mut input = pdf1d::rat_input(150.0e6);
    input.comm.alpha_write = probe.alpha_write;
    input.comm.alpha_read = probe.alpha_read;
    let r = Worksheet::new(input).analyze().unwrap();
    assert!((r.speedup - 10.6).abs() < 0.1, "speedup {}", r.speedup);
}

/// The 2-D failure mode: alphas probed at the *right* size (256 KB for the
/// result block) would have predicted the communication correctly; alphas
/// probed at 2 KB underestimate it ~6x. RAT is only as good as its
/// microbenchmarks — the paper's own conclusion.
#[test]
fn size_matched_microbenchmark_fixes_the_2d_prediction() {
    let ic = catalog::nallatech_h101().interconnect;
    let wrong_size = measure_alpha(&ic, 2048);
    let right_size = measure_alpha(&ic, 262_144);

    let naive = pdf2d::rat_input(150.0e6); // uses the paper's 2 KB-derived alphas
    let naive_pred = Worksheet::new(naive.clone()).analyze().unwrap();

    let mut corrected = naive.clone();
    corrected.comm.alpha_write = right_size.alpha_write;
    corrected.comm.alpha_read = right_size.alpha_read;
    let corrected_pred = Worksheet::new(corrected).analyze().unwrap();

    let m = pdf2d::design().simulate(150.0e6);
    let measured_comm = m.comm_per_iter().as_secs_f64();

    let naive_err = (measured_comm - naive_pred.throughput.t_comm.seconds()).abs() / measured_comm;
    let corrected_err =
        (measured_comm - corrected_pred.throughput.t_comm.seconds()).abs() / measured_comm;
    assert!(
        naive_err > 0.75,
        "2 KB-probed prediction should miss badly: {naive_err:.3}"
    );
    assert!(
        corrected_err < 0.05,
        "size-matched prediction should land: {corrected_err:.3}"
    );
    // The twist the paper itself reports (§5.1, "a victory in contingency
    // planning"): the naive prediction's *speedup* was accidentally accurate
    // because its optimistic communication estimate cancelled its
    // conservative computation estimate (48 of the actual ~64 ops/cycle).
    // Fixing communication alone therefore makes the end-to-end speedup
    // prediction WORSE — error cancellation is not accuracy.
    let measured_speedup = pdf2d::T_SOFT / m.total.as_secs_f64();
    let naive_sp_err = (naive_pred.speedup - measured_speedup).abs() / measured_speedup;
    let corr_sp_err = (corrected_pred.speedup - measured_speedup).abs() / measured_speedup;
    assert!(
        corr_sp_err > naive_sp_err,
        "expected cancellation loss: corrected {corr_sp_err:.3} vs naive {naive_sp_err:.3}"
    );
    // Fixing BOTH estimates (size-matched alpha + the achieved ~64 ops/cycle)
    // beats everything.
    let mut fully = naive;
    fully.comm.alpha_write = right_size.alpha_write;
    fully.comm.alpha_read = right_size.alpha_read;
    fully.comp.throughput_proc = 64.0;
    let fully_pred = Worksheet::new(fully).analyze().unwrap();
    let fully_err = (fully_pred.speedup - measured_speedup).abs() / measured_speedup;
    assert!(
        fully_err < naive_sp_err && fully_err < corr_sp_err,
        "full correction {fully_err:.3} should beat naive {naive_sp_err:.3} and partial {corr_sp_err:.3}"
    );
    // Sanity: the 2 KB probe itself is the Table-2/5 value.
    assert!((wrong_size.alpha_read - 0.16).abs() < 0.02);
}

/// Alpha tables across the full size sweep are physical: in (0, 1], and on the
/// XD1000 (setup-dominated small transfers) monotone improving with size.
#[test]
fn alpha_tables_are_physical() {
    for spec in [
        catalog::nallatech_h101(),
        catalog::xd1000(),
        catalog::generic_pcie_gen2_x8(),
    ] {
        let table = rat::sim::microbench::alpha_table(
            &spec.interconnect,
            &rat::sim::microbench::standard_sizes(),
        );
        for s in &table {
            assert!(s.alpha_write > 0.0 && s.alpha_write <= 1.0);
            assert!(s.alpha_read > 0.0 && s.alpha_read <= 1.0);
        }
    }
    let xd = rat::sim::microbench::alpha_table(
        &catalog::xd1000().interconnect,
        &rat::sim::microbench::standard_sizes(),
    );
    for w in xd.windows(2) {
        assert!(
            w[1].alpha_write >= w[0].alpha_write * 0.97,
            "XD1000 write alpha should not regress materially with size"
        );
    }
}

/// The MD prediction driven by the XD1000's own microbenchmark instead of the
/// paper's round 0.9 — the communication prediction tightens against the
/// simulated measurement.
#[test]
fn md_prediction_with_measured_alpha() {
    let ic = catalog::xd1000().interconnect;
    let probe = measure_alpha(&ic, 16_384 * 36);
    let mut input = rat::apps::md::rat::rat_input(100.0e6);
    input.comm.alpha_write = probe.alpha_write;
    input.comm.alpha_read = probe.alpha_read;
    let r = Worksheet::new(input).analyze().unwrap();
    // t_comm prediction with measured alpha ~ 2 x 1.386e-3 = 2.77e-3 (the
    // worksheet still models a blocking read-back; the design streams it).
    assert!((r.throughput.t_comm.seconds() - 2.77e-3).abs() / 2.77e-3 < 0.02);
    // Speedup barely moves — MD is compute-dominated.
    assert!((r.speedup - 10.7).abs() < 0.1);
}
