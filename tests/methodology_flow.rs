//! The Figure-1 methodology exercised as the paper intends: iteratively,
//! across candidate designs, with all three tests wired to real artifacts.

use rat::apps::pdf::fixed::precision_eval;
use rat::apps::{datagen, pdf, pdf1d};
use rat::core::methodology::{AmenabilityTest, Bounce, Requirements, Verdict};
use rat::core::precision::precision_test;
use rat::core::resources::{device, ResourceEstimate, ResourceReport};
use rat::fixed::QFormat;

fn reqs(min_speedup: f64) -> Requirements {
    Requirements {
        min_speedup,
        reject_routing_strain: true,
    }
}

fn pdf_precision(tolerance: f64) -> rat::core::precision::PrecisionReport {
    let samples = datagen::bimodal_samples(1024, 55);
    let bins = pdf::bin_centers();
    let candidates: Vec<QFormat> = [9u32, 13, 17, 23, 31]
        .iter()
        .map(|&f| QFormat::signed(0, f).unwrap())
        .collect();
    precision_test(&candidates, tolerance, 18, |fmt| {
        precision_eval(fmt, &samples, &bins, pdf::BANDWIDTH)
    })
}

/// The happy path: 1-D PDF at 150 MHz with the 18-bit datapath and the
/// Figure-3 resource budget proceeds to hardware.
#[test]
fn full_three_test_pass_proceeds() {
    let report = AmenabilityTest::new(pdf1d::rat_input(150.0e6), reqs(10.0))
        .with_precision(pdf_precision(0.03))
        .with_resources(pdf1d::design().resource_report())
        .evaluate()
        .unwrap();
    assert!(report.proceed(), "{}", report.render());
    let chosen = report
        .precision
        .as_ref()
        .unwrap()
        .chosen_candidate()
        .unwrap();
    // The tolerance admits a format at or below the paper's 18 bits, costing
    // a single MAC per multiply.
    assert!(chosen.format.total_bits() <= 18);
    assert_eq!(chosen.dsps_per_mult, 1);
}

/// The iterative loop: the 75 MHz design misses 10x, gets bounced, and the
/// designer's revision (find the clock that works) passes.
#[test]
fn iterative_redesign_loop() {
    let mut fclock = 75.0e6;
    let mut passes = Vec::new();
    loop {
        let report = AmenabilityTest::new(pdf1d::rat_input(fclock), reqs(10.0))
            .evaluate()
            .unwrap();
        let done = report.proceed();
        passes.push((fclock, done));
        if done {
            break;
        }
        match report.verdict {
            Verdict::Revise(Bounce::InsufficientThroughput { .. }) => {
                fclock += 25.0e6; // "NEW: create design on paper" — retarget the clock
            }
            other => panic!("unexpected bounce {other:?}"),
        }
        assert!(fclock < 1.0e9, "runaway loop");
    }
    // 75 and 100 MHz fail (5.4x, 7.1x), 125 fails (8.9x), 150 passes (10.6x).
    let outcomes: Vec<bool> = passes.iter().map(|p| p.1).collect();
    assert_eq!(outcomes, vec![false, false, false, true]);
    assert_eq!(passes.last().unwrap().0, 150.0e6);
}

/// An unrealizable precision requirement bounces at the second gate even
/// though throughput is fine.
#[test]
fn precision_gate_bounces_impossible_tolerance() {
    let report = AmenabilityTest::new(pdf1d::rat_input(150.0e6), reqs(5.0))
        .with_precision(pdf_precision(1e-12))
        .evaluate()
        .unwrap();
    assert_eq!(
        report.verdict,
        Verdict::Revise(Bounce::UnrealizablePrecision)
    );
}

/// A design that fits on a bigger part but not the LX100: the resource gate
/// is device-specific, and switching device is a legitimate revision.
#[test]
fn resource_gate_depends_on_device() {
    // A hypothetical 60-pipeline variant of the 1-D PDF: 120 MACs. Logic kept
    // below the SX55's routing-strain threshold (its slice count is half the
    // LX100's).
    let big = ResourceEstimate {
        dsp: 60 * 2,
        bram: 90,
        logic: 15_000,
    };
    let on_lx100 = ResourceReport::analyze(device::virtex4_lx100(), big);
    let on_sx55 = ResourceReport::analyze(device::virtex4_sx55(), big);
    assert!(!on_lx100.fits, "120 DSPs exceed the LX100's 96");
    assert!(on_sx55.fits, "the SX55's 512 DSPs absorb it");

    let bounced = AmenabilityTest::new(pdf1d::rat_input(150.0e6), reqs(5.0))
        .with_resources(on_lx100)
        .evaluate()
        .unwrap();
    assert!(matches!(
        bounced.verdict,
        Verdict::Revise(Bounce::InsufficientResources { .. })
    ));
    let passed = AmenabilityTest::new(pdf1d::rat_input(150.0e6), reqs(5.0))
        .with_resources(on_sx55)
        .evaluate()
        .unwrap();
    assert!(passed.proceed());
}

/// Multi-stage composition: PDF estimation embedded in a larger pipeline with
/// software pre/post-processing obeys Amdahl accounting.
#[test]
fn multistage_application_analysis() {
    use rat::core::multistage::{analyze, Stage};
    use rat::core::quantity::Seconds;
    let stages = vec![
        Stage::Software {
            name: "ingest + windowing".into(),
            t_soft: Seconds::new(0.12),
        },
        Stage::Fpga(pdf1d::rat_input(150.0e6)),
        Stage::Software {
            name: "report generation".into(),
            t_soft: Seconds::new(0.05),
        },
    ];
    let r = analyze(&stages).unwrap();
    assert!((r.total_soft.seconds() - 0.748).abs() < 1e-9);
    assert!(
        r.speedup > 2.5 && r.speedup < 4.0,
        "composite speedup {}",
        r.speedup
    );
    assert!(r.amdahl_ceiling() < 4.5);
    assert_eq!(r.bottleneck().unwrap().name, "ingest + windowing");
}
