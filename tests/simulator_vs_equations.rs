//! Cross-validation of the discrete-event simulator against RAT's closed-form
//! equations: on an ideal platform (no setup latency, no host overhead,
//! size-independent alpha), the simulated makespan must match Eq. (5) exactly
//! for single buffering and land within one startup iteration of Eq. (6) for
//! double buffering. Property-based over workload shapes.

use proptest::prelude::*;

use rat::core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat::core::quantity::{Freq, Seconds, Throughput};
use rat::core::throughput;
use rat::sim::{
    AppRun, BufferMode, HardwareKernel, Interconnect, Platform, PlatformSpec, SimTime,
    TabulatedKernel,
};

const BW: f64 = 1.0e9;
const ALPHA: f64 = 0.5;
const FCLOCK: f64 = 100.0e6;
const FC: Freq = Freq::from_hz(FCLOCK);

fn ideal_platform() -> Platform {
    Platform::new(PlatformSpec {
        name: "ideal".into(),
        interconnect: Interconnect {
            name: "ideal-bus".into(),
            ideal_bw: Throughput::from_bytes_per_sec(BW),
            setup_write: SimTime::ZERO,
            setup_read: SimTime::ZERO,
            alpha_write: rat::sim::AlphaCurve::flat(ALPHA),
            alpha_read: rat::sim::AlphaCurve::flat(ALPHA),
            max_dma_bytes: None,
        },
        host: rat::sim::host::HostModel::IDEAL,
        reconfiguration: SimTime::ZERO,
    })
}

/// Build matched (RatInput, AppRun, kernel) descriptions of the same workload.
fn matched(
    elements_in: u64,
    elements_out: u64,
    ops_per_element: u64,
    throughput_proc: u64,
    iterations: u64,
    buffering: Buffering,
) -> (RatInput, AppRun, TabulatedKernel) {
    let input = RatInput {
        name: "prop".into(),
        dataset: DatasetParams {
            elements_in,
            elements_out,
            bytes_per_element: 4,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(BW),
            alpha_write: ALPHA,
            alpha_read: ALPHA,
        },
        comp: CompParams {
            ops_per_element: ops_per_element as f64,
            throughput_proc: throughput_proc as f64,
            fclock: FC,
        },
        software: SoftwareParams {
            t_soft: Seconds::new(1.0),
            iterations,
        },
        buffering,
    };
    let run = AppRun::builder()
        .iterations(iterations)
        .elements_per_iter(elements_in)
        .input_bytes_per_iter(elements_in * 4)
        .output_bytes_per_iter(elements_out * 4)
        .buffer_mode(match buffering {
            Buffering::Single => BufferMode::Single,
            Buffering::Double => BufferMode::Double,
        })
        .build();
    // Kernel whose cycles equal Eq. (4)'s prediction exactly.
    let cycles = (elements_in * ops_per_element).div_ceil(throughput_proc);
    let kernel = TabulatedKernel::uniform("prop", cycles, iterations as usize);
    (input, run, kernel)
}

/// Body of `single_buffered_makespan_matches_eq5`, shared between the
/// property and the named regression tests so a replayed corpus case runs
/// exactly the code the property does.
fn check_sb_matches_eq5(elements_in: u64, elements_out: u64, ops: u64, tproc: u64, iters: u64) {
    let (input, run, kernel) = matched(
        elements_in,
        elements_out,
        ops,
        tproc,
        iters,
        Buffering::Single,
    );
    let m = ideal_platform().execute(&kernel, &run, FC).unwrap();
    // Account for div_ceil rounding in the kernel's cycle count.
    let comp_cycles = (elements_in * ops).div_ceil(tproc);
    let analytic =
        iters as f64 * (throughput::t_comm(&input).seconds() + comp_cycles as f64 / FCLOCK);
    let sim = m.total.as_secs_f64();
    assert!(
        (sim - analytic).abs() / analytic < 1e-6,
        "sim {sim:.6e} vs Eq.5 {analytic:.6e}"
    );
}

/// Body of `double_buffered_makespan_brackets_eq6` (shared with the named
/// regression tests). Requires `iters >= 2`.
fn check_db_brackets_eq6(elements_in: u64, elements_out: u64, ops: u64, tproc: u64, iters: u64) {
    let (input, run, kernel) = matched(
        elements_in,
        elements_out,
        ops,
        tproc,
        iters,
        Buffering::Double,
    );
    let m = ideal_platform().execute(&kernel, &run, FC).unwrap();
    let comp_cycles = (elements_in * ops).div_ceil(tproc);
    let t_comp = comp_cycles as f64 / FCLOCK;
    let t_comm = throughput::t_comm(&input).seconds();
    let steady = iters as f64 * t_comm.max(t_comp);
    let sim = m.total.as_secs_f64();
    assert!(
        sim >= steady * (1.0 - 1e-9),
        "sim {sim:.3e} below Eq.6 {steady:.3e}"
    );
    let slack = t_comm + t_comp; // startup + drain allowance
    assert!(
        sim <= steady + slack + 1e-12,
        "sim {sim:.3e} exceeds Eq.6 {steady:.3e} + startup {slack:.3e}"
    );
}

/// Body of `buffering_and_resource_bounds` (shared with the named regression
/// tests).
fn check_buffering_bounds(elements_in: u64, elements_out: u64, ops: u64, tproc: u64, iters: u64) {
    let (_, run_sb, kernel) = matched(
        elements_in,
        elements_out,
        ops,
        tproc,
        iters,
        Buffering::Single,
    );
    let (_, run_db, _) = matched(
        elements_in,
        elements_out,
        ops,
        tproc,
        iters,
        Buffering::Double,
    );
    let platform = ideal_platform();
    let sb = platform.execute(&kernel, &run_sb, FC).unwrap();
    let db = platform.execute(&kernel, &run_db, FC).unwrap();
    assert!(db.total <= sb.total);
    for m in [&sb, &db] {
        assert!(m.total >= m.comm_busy);
        assert!(m.total >= m.compute_busy);
    }
    // Busy totals are schedule-independent.
    assert_eq!(sb.comm_busy, db.comm_busy);
    assert_eq!(sb.compute_busy, db.compute_busy);
}

/// Replays the shrunken case proptest once found (formerly the
/// `simulator_vs_equations.proptest-regressions` seed `0e2668c7…`:
/// `elements_in = 13, elements_out = 382, ops = 129, tproc = 6, iters = 5` —
/// an output-dominated transfer with a tiny compute kernel). The corpus file
/// is gone; this named test keeps the case reviewable and permanently red on
/// regression. The shape fits all three schedule properties, so it runs each.
#[test]
fn regression_output_dominated_tiny_kernel_13_382_129_6_5() {
    check_sb_matches_eq5(13, 382, 129, 6, 5);
    check_db_brackets_eq6(13, 382, 129, 6, 5);
    check_buffering_bounds(13, 382, 129, 6, 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-buffered: simulated makespan == Eq. (5) to rounding.
    #[test]
    fn single_buffered_makespan_matches_eq5(
        elements_in in 1u64..4096,
        elements_out in 0u64..4096,
        ops in 1u64..10_000,
        tproc in 1u64..64,
        iters in 1u64..20,
    ) {
        check_sb_matches_eq5(elements_in, elements_out, ops, tproc, iters);
    }

    /// Double-buffered: Eq. (6) bounds the makespan from below, and the bound
    /// is tight to within one iteration's startup cost.
    #[test]
    fn double_buffered_makespan_brackets_eq6(
        elements_in in 1u64..4096,
        elements_out in 0u64..4096,
        ops in 1u64..10_000,
        tproc in 1u64..64,
        iters in 2u64..20,
    ) {
        check_db_brackets_eq6(elements_in, elements_out, ops, tproc, iters);
    }

    /// Double buffering never loses to single buffering, and both dominate
    /// the per-resource busy-time lower bounds.
    #[test]
    fn buffering_and_resource_bounds(
        elements_in in 1u64..2048,
        elements_out in 0u64..2048,
        ops in 1u64..5_000,
        tproc in 1u64..32,
        iters in 1u64..12,
    ) {
        check_buffering_bounds(elements_in, elements_out, ops, tproc, iters);
    }

    /// The worksheet's speedup is monotone: more ops/cycle never hurts, higher
    /// clock never hurts, better alpha never hurts.
    #[test]
    fn speedup_monotonicity(
        elements_in in 1u64..4096,
        elements_out in 0u64..4096,
        ops in 1u64..100_000,
        tproc in 1u64..128,
        iters in 1u64..100,
        buffering in prop_oneof![Just(Buffering::Single), Just(Buffering::Double)],
    ) {
        let (input, _, _) = matched(elements_in, elements_out, ops, tproc, iters, buffering);
        let base = throughput::speedup(&input);
        let mut faster = input.clone();
        faster.comp.throughput_proc *= 2.0;
        prop_assert!(throughput::speedup(&faster) >= base - 1e-12);
        let mut clocked = input.clone();
        clocked.comp.fclock *= 1.5;
        prop_assert!(throughput::speedup(&clocked) >= base - 1e-12);
        let mut alpha = input.clone();
        alpha.comm.alpha_write = (alpha.comm.alpha_write * 1.5).min(1.0);
        alpha.comm.alpha_read = (alpha.comm.alpha_read * 1.5).min(1.0);
        prop_assert!(throughput::speedup(&alpha) >= base - 1e-12);
    }

    /// Inverse solve round trip under arbitrary feasible targets.
    #[test]
    fn inverse_solver_round_trip(
        elements_in in 1u64..4096,
        ops in 1u64..100_000,
        iters in 1u64..100,
        target_frac in 0.05f64..0.95,
    ) {
        let (input, _, _) = matched(elements_in, 0, ops, 8, iters, Buffering::Single);
        // Pick a target safely inside the feasible region (below the wall).
        let wall = rat::core::solve::max_speedup(&input).unwrap();
        let target = wall * target_frac;
        let req = rat::core::solve::required_throughput_proc(&input, target).unwrap();
        let mut tuned = input.clone();
        tuned.comp.throughput_proc = req;
        let achieved = throughput::speedup(&tuned);
        prop_assert!((achieved - target).abs() / target < 1e-9);
    }
}

/// Deterministic re-execution: the simulator is a pure function of its inputs.
#[test]
fn simulator_is_deterministic() {
    let (_, run, kernel) = matched(512, 256, 768, 20, 40, Buffering::Double);
    let platform = ideal_platform();
    let a = platform.execute(&kernel, &run, FC).unwrap();
    let b = platform.execute(&kernel, &run, FC).unwrap();
    assert_eq!(a.total, b.total);
    assert_eq!(a.trace.spans().len(), b.trace.spans().len());
    assert_eq!(a.trace.spans(), b.trace.spans());
}

/// A data-dependent kernel (unequal batch costs) still satisfies the SB
/// equation with the *mean* computation time — RAT's implicit assumption.
#[test]
fn uneven_batches_average_out_in_sb() {
    let cycles = vec![1000, 3000, 500, 4500, 2000];
    let kernel = TabulatedKernel::new("uneven", cycles.clone());
    let run = AppRun::builder()
        .iterations(5)
        .elements_per_iter(1)
        .input_bytes_per_iter(1000)
        .buffer_mode(BufferMode::Single)
        .build();
    let m = ideal_platform().execute(&kernel, &run, FC).unwrap();
    let total_cycles: u64 = cycles.iter().sum();
    let expect = 5.0 * (1000.0 / (ALPHA * BW)) + total_cycles as f64 / FCLOCK;
    assert!((m.total.as_secs_f64() - expect).abs() / expect < 1e-6);
    let mean_comp = m.comp_per_iter().as_secs_f64();
    assert!((mean_comp - (total_cycles as f64 / 5.0) / FCLOCK).abs() < 1e-9);
    // Spot-check the kernel reference wrapper too.
    let as_ref: &dyn HardwareKernel = &kernel;
    assert_eq!(as_ref.name(), "uneven");
}
