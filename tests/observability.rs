//! End-to-end tests of the observability layer (`--metrics` / `--profile`):
//! the tree summary snapshot, the chrome-trace export's schema and nesting,
//! and the invariant that turning collection on never perturbs stdout.
//!
//! Everything here spawns the real binary: the global telemetry collector is
//! process-wide, so in-process tests would leak spans into each other.

use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;

use rat_core::telemetry::json::{self, Json};

fn rat_binary() -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("rat{}", std::env::consts::EXE_SUFFIX));
    p
}

fn worksheet(name: &str) -> String {
    format!("{}/worksheets/{name}.toml", env!("CARGO_MANIFEST_DIR"))
}

fn run_rat(args: &[&str]) -> (String, String) {
    let out = Command::new(rat_binary())
        .args(args)
        .output()
        .expect("spawning the rat binary (build it with `cargo build -p rat-cli`)");
    assert!(
        out.status.success(),
        "rat {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A scratch path under the target dir (kept out of the repo tree).
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rat-obs-{}-{name}", std::process::id()));
    p
}

// ---- tree-summary snapshot ------------------------------------------------

/// Replace the volatile `key=value` duration tokens (`total=`, `self=`,
/// `rate=`) with `key=_` so the snapshot pins structure, names, and counts
/// but not wall-clock times.
fn scrub(tree: &str) -> String {
    let mut out = String::new();
    for line in tree.lines() {
        let mut scrubbed = String::new();
        for (i, tok) in line.split_whitespace().enumerate() {
            if i > 0 {
                scrubbed.push(' ');
            }
            match tok.split_once('=') {
                Some((k @ ("total" | "self" | "rate"), _)) => {
                    scrubbed.push_str(k);
                    scrubbed.push_str("=_");
                }
                _ => scrubbed.push_str(tok),
            }
        }
        out.push_str(&scrubbed);
        out.push('\n');
    }
    out
}

/// The `--metrics` tree for a fixed three-point sweep is deterministic in
/// content once durations are scrubbed: same spans, same counts, same metric
/// values, at any thread count. The batched sweep dispatches one engine job
/// per 1024-point chunk, so three points are a single job whose kernel
/// reports its point count through the `batch.points` metric and its stage
/// hit/miss profile through the `stage.*` counters: an fclock-only sweep
/// computes the comm stage once (1 miss, 2 hits) while the clock-dependent
/// comp/overlap/speedup stages recompute at each of the three points.
#[test]
fn metrics_tree_snapshot_on_fixed_sweep() {
    let expected = "\
wall-clock profile:
rat.run count=1 total=_ self=_
sweep count=1 total=_ self=_
engine.batch count=1 total=_ self=_
engine.job count=1 total=_ self=_
metrics:
engine.jobs 1
engine.batches 1
batch.points 3
stage.hits 2
stage.misses 10
stage.comm.hits 2
stage.comm.misses 1
stage.comp.misses 3
stage.overlap.misses 3
stage.speedup.misses 3
";
    for jobs in ["1", "2", "8"] {
        let (_, stderr) = run_rat(&[
            "--metrics",
            "--jobs",
            jobs,
            "sweep",
            &worksheet("pdf1d"),
            "fclock",
            "75",
            "100",
            "150",
        ]);
        let tree_start = stderr
            .find("wall-clock profile:")
            .unwrap_or_else(|| panic!("no profile section in stderr:\n{stderr}"));
        assert_eq!(
            scrub(&stderr[tree_start..]),
            expected,
            "at --jobs {jobs}; raw stderr:\n{stderr}"
        );
    }
}

// ---- chrome-trace schema and nesting --------------------------------------

/// Parse and schema-check one profile: returns the `traceEvents` array after
/// validating the envelope and each event's required typed fields.
fn load_valid_profile(path: &std::path::Path) -> Vec<Json> {
    let text = std::fs::read_to_string(path).expect("profile file written");
    let root = json::parse(&text).expect("profile is well-formed JSON");
    let obj = root.as_object().expect("top level is an object");
    assert!(
        obj.iter().any(|(k, _)| k == "displayTimeUnit"),
        "missing displayTimeUnit"
    );
    let metrics = obj
        .iter()
        .find(|(k, _)| k == "metrics")
        .map(|(_, v)| v)
        .expect("metrics object present");
    for (name, v) in metrics.as_object().expect("metrics is an object") {
        assert!(
            v.as_f64().is_some(),
            "metric {name} must be numeric, got {v:?}"
        );
    }
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents present")
        .as_array()
        .expect("traceEvents is an array")
        .clone();
    for e in &events {
        let ev = e.as_object().expect("event is an object");
        let field = |k: &str| {
            ev.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("event missing {k}: {ev:?}"))
        };
        assert_eq!(field("ph").as_str(), Some("X"), "only complete events");
        assert!(field("name").as_str().is_some());
        assert!(field("cat").as_str().is_some());
        for num in ["pid", "tid", "ts", "dur"] {
            let v = field(num).as_f64().expect("numeric field");
            assert!(v >= 0.0, "{num} must be nonnegative, got {v}");
        }
        assert!(field("args").as_object().is_some(), "args is an object");
    }
    events
}

fn event_str<'a>(e: &'a Json, key: &str) -> &'a str {
    e.as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == key))
        .and_then(|(_, v)| v.as_str())
        .unwrap_or("")
}

fn event_num(e: &Json, key: &str) -> f64 {
    e.as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == key))
        .and_then(|(_, v)| v.as_f64())
        .unwrap_or(f64::NAN)
}

fn arg_str<'a>(e: &'a Json, key: &str) -> &'a str {
    e.as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == "args"))
        .and_then(|(_, v)| v.as_object())
        .and_then(|args| args.iter().find(|(k, _)| k == key))
        .and_then(|(_, v)| v.as_str())
        .unwrap_or("")
}

/// The acceptance-criteria check: the emitted chrome trace contains at least
/// one `engine.job` span nested (by path and by time) under the `rat.run`
/// span — at every engine thread count.
#[test]
fn profile_json_schema_and_engine_job_nesting() {
    for jobs in ["1", "2", "8"] {
        let path = scratch(&format!("nest-{jobs}.json"));
        run_rat(&[
            "--profile",
            path.to_str().expect("utf-8 path"),
            "--jobs",
            jobs,
            "sweep",
            &worksheet("pdf1d"),
            "fclock",
            "75",
            "100",
            "150",
        ]);
        let events = load_valid_profile(&path);
        std::fs::remove_file(&path).ok();

        let run = events
            .iter()
            .find(|e| event_str(e, "name") == "rat.run")
            .unwrap_or_else(|| panic!("no rat.run span at --jobs {jobs}"));
        let run_start = event_num(run, "ts");
        let run_end = run_start + event_num(run, "dur");
        let nested_jobs = events
            .iter()
            .filter(|e| event_str(e, "name") == "engine.job")
            .filter(|e| {
                let path = arg_str(e, "path");
                let start = event_num(e, "ts");
                let end = start + event_num(e, "dur");
                path.starts_with("rat.run/") && start >= run_start && end <= run_end
            })
            .count();
        assert!(
            nested_jobs >= 1,
            "no engine.job nested under rat.run at --jobs {jobs}"
        );
        // Every job names the phase that spawned it.
        for e in events
            .iter()
            .filter(|e| event_str(e, "name") == "engine.job")
        {
            assert_eq!(arg_str(e, "kind"), "sweep", "job kind carries the phase");
        }
    }
}

/// The simulator-side export is equally well-formed and lanes spans on the
/// simulated-time pid, one tid per resource.
#[test]
fn trace_csv_and_profile_share_no_pid() {
    let path = scratch("sim.json");
    run_rat(&[
        "--profile",
        path.to_str().expect("utf-8 path"),
        "trace",
        "pdf1d",
    ]);
    let events = load_valid_profile(&path);
    std::fs::remove_file(&path).ok();
    // Host spans only in this file (pid 1); the simulator bridge (pid 2) is
    // exercised via the library API in fpga-sim's unit tests. What matters
    // here: pids present are well-typed and rat.run exists.
    assert!(events.iter().any(|e| event_str(e, "name") == "rat.run"));
}

// ---- stdout invariance ----------------------------------------------------

/// Commands used by the invariance property: a mix of engine-parallel,
/// simulator-driven, and purely analytic paths.
const INVARIANCE_CASES: usize = 5;

fn invariance_args(case: usize, ws: &str) -> Vec<String> {
    let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    match case % INVARIANCE_CASES {
        0 => s(&["analyze", ws]),
        1 => s(&["sweep", ws, "fclock", "75", "100", "150"]),
        2 => s(&["solve", ws, "10"]),
        3 => s(&["sensitivity", ws]),
        _ => s(&["trace", "pdf1d"]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Enabling `--metrics` and `--profile` never changes stdout: collection
    /// writes only to stderr and the profile file.
    #[test]
    fn metrics_and_profile_never_change_stdout(case in 0usize..INVARIANCE_CASES) {
        let ws = worksheet("pdf1d");
        let plain_args = invariance_args(case, &ws);
        let plain: Vec<&str> = plain_args.iter().map(String::as_str).collect();
        let (stdout_plain, _) = run_rat(&plain);

        let path = scratch(&format!("inv-{case}.json"));
        let mut instrumented = vec![
            "--metrics".to_string(),
            "--profile".to_string(),
            path.to_str().expect("utf-8 path").to_string(),
        ];
        instrumented.extend(plain_args.iter().cloned());
        let inst: Vec<&str> = instrumented.iter().map(String::as_str).collect();
        let (stdout_inst, stderr_inst) = run_rat(&inst);
        prop_assert!(path.exists(), "profile file written");
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(
            &stdout_plain,
            &stdout_inst,
            "stdout changed under --metrics/--profile for {:?}",
            plain
        );
        prop_assert!(
            stderr_inst.contains("wall-clock profile:"),
            "metrics tree missing from stderr: {}",
            stderr_inst
        );
    }
}
