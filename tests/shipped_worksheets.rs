//! The shipped TOML worksheets in `worksheets/` must stay parseable and in
//! sync with the case-study constants.

use rat::core::params::RatInput;
use rat::core::worksheet::Worksheet;

fn load(name: &str) -> RatInput {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/worksheets/");
    let text = std::fs::read_to_string(format!("{path}{name}.toml"))
        .unwrap_or_else(|e| panic!("reading {name}.toml: {e}"));
    let input: RatInput = toml::from_str(&text).expect("valid worksheet TOML");
    input.validate().expect("valid parameters");
    input
}

#[test]
fn pdf1d_worksheet_matches_table2() {
    let ws = load("pdf1d");
    assert_eq!(ws, rat::apps::pdf1d::rat_input(150.0e6));
    let r = Worksheet::new(ws).analyze().unwrap();
    assert!((r.speedup - 10.6).abs() < 0.05);
}

#[test]
fn pdf2d_worksheet_matches_table5() {
    let ws = load("pdf2d");
    assert_eq!(ws, rat::apps::pdf2d::rat_input(150.0e6));
}

#[test]
fn md_worksheet_matches_table8() {
    let ws = load("md");
    assert_eq!(ws, rat::apps::md::rat::rat_input(100.0e6));
    let r = Worksheet::new(ws).analyze().unwrap();
    assert!((r.speedup - 10.7).abs() < 0.06);
}
