//! Regression pin for the Eq. (1)–(3) deduplication: the analytic worksheet
//! and the cycle simulator's interconnect share one transfer-time kernel,
//! [`rat::core::throughput::transfer_seconds`], so their communication
//! arithmetic can never diverge. These tests hold both callers to the shared
//! function — the simulator to picosecond quantization, the worksheet
//! bit-for-bit.

use rat::apps::pdf1d;
use rat::core::quantity::{Bytes, Throughput};
use rat::core::throughput::{self, transfer_seconds};
use rat::sim::{AlphaCurve, Direction, Interconnect, SimTime};

fn flat_bus(alpha: f64, bw: f64) -> Interconnect {
    Interconnect {
        name: "dedup-probe".into(),
        ideal_bw: Throughput::from_bytes_per_sec(bw),
        setup_write: SimTime::ZERO,
        setup_read: SimTime::ZERO,
        alpha_write: AlphaCurve::flat(alpha),
        alpha_read: AlphaCurve::flat(alpha),
        max_dma_bytes: None,
    }
}

/// With setup latency stripped, the simulator's transfer time IS the shared
/// kernel's answer, to the picosecond quantization of `SimTime` — across
/// sizes, efficiencies, and bandwidths.
#[test]
fn simulator_transfer_time_is_the_shared_kernel() {
    for &bytes in &[1u64, 4, 512, 2048, 16_384, 262_144, 4 << 20] {
        for &alpha in &[0.0265, 0.16, 0.37, 0.9, 1.0] {
            for &bw in &[500.0e6, 1.0e9, 4.0e9] {
                let ic = flat_bus(alpha, bw);
                let expected = SimTime::from_seconds(transfer_seconds(
                    Bytes::new(bytes),
                    alpha,
                    Throughput::from_bytes_per_sec(bw),
                ));
                for dir in [Direction::Write, Direction::Read] {
                    assert_eq!(
                        ic.transfer_time(bytes, dir),
                        expected,
                        "{bytes} B at alpha {alpha}, {bw} B/s"
                    );
                }
            }
        }
    }
}

/// Equations (2) and (3) are the shared kernel applied to the worksheet's
/// block sizes and alphas — exactly, not approximately.
#[test]
fn analytic_equations_route_through_the_shared_kernel() {
    let input = pdf1d::rat_input(150.0e6);
    let write = transfer_seconds(
        input.input_bytes(),
        input.comm.alpha_write,
        input.comm.ideal_bandwidth,
    );
    let read = transfer_seconds(
        input.output_bytes(),
        input.comm.alpha_read,
        input.comm.ideal_bandwidth,
    );
    assert_eq!(throughput::t_write(&input), write);
    assert_eq!(throughput::t_read(&input), read);
    assert_eq!(throughput::t_comm(&input), write + read);
}

/// The shared kernel reproduces the paper's Table-3 communication pin:
/// 2 KB in at alpha 0.37 plus 4 B out at alpha 0.16 over 1 GB/s is the
/// printed 5.56e-6 s.
#[test]
fn shared_kernel_reproduces_table3_t_comm() {
    let gbs = Throughput::from_bytes_per_sec(1.0e9);
    let t = (transfer_seconds(Bytes::new(2048), 0.37, gbs)
        + transfer_seconds(Bytes::new(4), 0.16, gbs))
    .seconds();
    assert!((t - 5.56e-6).abs() / 5.56e-6 < 1e-3, "t_comm {t:.4e}");
}

/// End to end: a zero-overhead simulated single-buffered run's communication
/// busy time equals `N_iter` applications of the shared kernel — the
/// worksheet's Eq. (1) — to picosecond resolution per transfer.
#[test]
fn simulated_comm_busy_equals_eq1_on_an_ideal_bus() {
    use rat::sim::{AppRun, BufferMode, Platform, PlatformSpec, TabulatedKernel};
    let iters = 7u64;
    let spec = PlatformSpec {
        name: "dedup-ideal".into(),
        interconnect: flat_bus(0.37, 1.0e9),
        host: rat::sim::host::HostModel::IDEAL,
        reconfiguration: SimTime::ZERO,
    };
    let kernel = TabulatedKernel::uniform("k", 100, iters as usize);
    let run = AppRun::builder()
        .iterations(iters)
        .elements_per_iter(512)
        .input_bytes_per_iter(2048)
        .output_bytes_per_iter(1024)
        .buffer_mode(BufferMode::Single)
        .build();
    let m = Platform::new(spec)
        .execute(&kernel, &run, rat::core::quantity::Freq::from_hz(150.0e6))
        .unwrap();
    let gbs = Throughput::from_bytes_per_sec(1.0e9);
    let per_iter = SimTime::from_seconds(transfer_seconds(Bytes::new(2048), 0.37, gbs))
        + SimTime::from_seconds(transfer_seconds(Bytes::new(1024), 0.37, gbs));
    assert_eq!(m.comm_busy, SimTime::from_ps(per_iter.as_ps() * iters));
}
