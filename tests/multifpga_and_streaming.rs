//! Validation of the future-work extensions (multi-FPGA scaling, streaming)
//! against the discrete-event simulator.

use rat::apps::pdf1d;
use rat::core::multifpga;
use rat::core::params::Buffering;
use rat::core::quantity::Throughput;
use rat::core::streaming::{self, ChannelDuplex, StreamBottleneck};
use rat::sim::host::HostModel;
use rat::sim::{
    AlphaCurve, AppRun, BufferMode, Interconnect, Platform, PlatformSpec, SimTime, TabulatedKernel,
};

fn ideal_platform() -> Platform {
    Platform::new(PlatformSpec {
        name: "ideal".into(),
        interconnect: Interconnect {
            name: "ideal-bus".into(),
            ideal_bw: Throughput::from_bytes_per_sec(1.0e9),
            setup_write: SimTime::ZERO,
            setup_read: SimTime::ZERO,
            alpha_write: AlphaCurve::flat(0.37),
            alpha_read: AlphaCurve::flat(0.16),
            max_dma_bytes: None,
        },
        host: HostModel::IDEAL,
        reconfiguration: SimTime::ZERO,
    })
}

/// The analytic multi-FPGA curve matches simulated parallel-kernel executions
/// across the linear region, the knee, and the saturated region.
#[test]
fn multifpga_model_matches_simulator() {
    let input = pdf1d_input_db();
    let iters = input.software.iterations;
    let cycles = (input.dataset.elements_in as f64 * input.comp.ops_per_element
        / input.comp.throughput_proc) as u64;
    let kernel = TabulatedKernel::uniform("k", cycles, iters as usize);
    let platform = ideal_platform();

    for devices in [1u32, 2, 4, 8, 24, 32] {
        let run = AppRun::builder()
            .iterations(iters)
            .elements_per_iter(input.dataset.elements_in)
            .input_bytes_per_iter(input.input_bytes().get())
            .output_bytes_per_iter(input.output_bytes().get())
            .buffer_mode(BufferMode::Double)
            .parallel_kernels(devices)
            .build();
        let m = platform.execute(&kernel, &run, input.comp.fclock).unwrap();
        let predicted = multifpga::analyze(&input, devices).unwrap();
        let sim = m.total.as_secs_f64();
        // Within one iteration's startup/drain of the steady-state model.
        let slack = ((predicted.t_comm + predicted.t_comp_each) * devices as f64).seconds();
        assert!(
            sim >= predicted.t_rc.seconds() * (1.0 - 1e-9),
            "{devices} devices: sim {sim:.4e} below model {:.4e}",
            predicted.t_rc.seconds()
        );
        assert!(
            sim <= predicted.t_rc.seconds() + slack,
            "{devices} devices: sim {sim:.4e} exceeds model {:.4e} + slack {slack:.2e}",
            predicted.t_rc.seconds()
        );
    }
}

fn pdf1d_input_db() -> rat::core::params::RatInput {
    let mut input = pdf1d::rat_input(150.0e6);
    input.buffering = Buffering::Double;
    input
}

/// The saturation point the analytic model names is where the simulator stops
/// improving.
#[test]
fn saturation_point_is_where_simulation_plateaus() {
    let input = pdf1d_input_db();
    let sat = multifpga::saturating_devices(&input).unwrap();
    assert_eq!(sat, 24);

    let iters = input.software.iterations;
    let cycles = (input.dataset.elements_in as f64 * input.comp.ops_per_element
        / input.comp.throughput_proc) as u64;
    let kernel = TabulatedKernel::uniform("k", cycles, iters as usize);
    let platform = ideal_platform();
    let total_at = |devices: u32| {
        let run = AppRun::builder()
            .iterations(iters)
            .elements_per_iter(input.dataset.elements_in)
            .input_bytes_per_iter(input.input_bytes().get())
            .output_bytes_per_iter(input.output_bytes().get())
            .buffer_mode(BufferMode::Double)
            .parallel_kernels(devices)
            .build();
        platform
            .execute(&kernel, &run, input.comp.fclock)
            .unwrap()
            .total
            .as_secs_f64()
    };
    let below = total_at(sat / 2);
    let at = total_at(sat);
    let above = total_at(sat * 2);
    // Meaningful gain up to saturation, negligible after.
    assert!(
        below / at > 1.5,
        "halving devices should hurt: {below:.3e} vs {at:.3e}"
    );
    assert!(
        at / above < 1.05,
        "doubling past saturation buys <5%: {at:.3e} vs {above:.3e}"
    );
}

/// Streaming prediction vs a simulated streamed run: a compute-bound stream's
/// total time matches `N_elements / compute_rate` to the startup transfer.
#[test]
fn streaming_model_matches_streamed_simulation() {
    let input = pdf1d_input_db();
    let s = streaming::analyze(&input, ChannelDuplex::Half).unwrap();
    assert_eq!(s.bottleneck, StreamBottleneck::Compute);

    let iters = input.software.iterations;
    let cycles = (input.dataset.elements_in as f64 * input.comp.ops_per_element
        / input.comp.throughput_proc) as u64;
    let kernel = TabulatedKernel::uniform("k", cycles, iters as usize);
    let run = AppRun::builder()
        .iterations(iters)
        .elements_per_iter(input.dataset.elements_in)
        .input_bytes_per_iter(input.input_bytes().get())
        .output_bytes_per_iter(input.output_bytes().get())
        .buffer_mode(BufferMode::Double)
        .streamed_output(true)
        .build();
    let m = ideal_platform()
        .execute(&kernel, &run, input.comp.fclock)
        .unwrap();
    let sim = m.total.as_secs_f64();
    assert!(
        (sim - s.t_stream.seconds()).abs() / s.t_stream.seconds() < 0.01,
        "simulated streamed run {sim:.4e} vs streaming model {:.4e}",
        s.t_stream.seconds()
    );
}

/// The channel wall is the same number everywhere it appears: the streaming
/// channel rate, the multi-FPGA ceiling, and the inverse solver's max_speedup
/// all describe one physical limit.
#[test]
fn channel_wall_is_consistent_across_models() {
    let input = pdf1d_input_db();
    let wall_solver = rat::core::solve::max_speedup(&input).unwrap();
    let curve = multifpga::scaling_curve(&input, 64).unwrap();
    let wall_scaling = curve.points.last().unwrap().speedup;
    assert!(
        (wall_solver - wall_scaling).abs() / wall_solver < 1e-9,
        "solver wall {wall_solver} vs scaling wall {wall_scaling}"
    );
    let s = streaming::analyze(&input, ChannelDuplex::Half).unwrap();
    let wall_streaming = input.software.t_soft.seconds()
        / ((input.dataset.elements_in * input.software.iterations) as f64 / s.channel_rate);
    assert!(
        (wall_solver - wall_streaming).abs() / wall_solver < 1e-9,
        "solver wall {wall_solver} vs streaming wall {wall_streaming}"
    );
}
