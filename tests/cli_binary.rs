//! True end-to-end tests of the `rat` binary: spawn the compiled executable
//! against the shipped worksheets and inspect stdout/exit codes, the way a
//! user's shell would.

use std::path::PathBuf;
use std::process::Command;

fn rat_binary() -> PathBuf {
    // target/<profile>/rat, relative to this test binary's location
    // (target/<profile>/deps/...).
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("rat{}", std::env::consts::EXE_SUFFIX));
    p
}

fn worksheet(name: &str) -> String {
    format!("{}/worksheets/{name}.toml", env!("CARGO_MANIFEST_DIR"))
}

fn run_rat(args: &[&str]) -> (String, String, bool) {
    let (stdout, stderr, code) = run_rat_env(args, &[]);
    (stdout, stderr, code == 0)
}

/// Spawn the binary with extra environment variables, returning the exact
/// exit code (the CLI's error taxonomy maps failure classes to distinct
/// codes; see DESIGN.md §10).
fn run_rat_env(args: &[&str], env: &[(&str, &str)]) -> (String, String, i32) {
    let mut cmd = Command::new(rat_binary());
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd
        .output()
        .expect("spawning the rat binary (build it with `cargo build -p rat-cli`)");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("rat exited with a code"),
    )
}

#[test]
fn analyze_shipped_pdf1d_worksheet() {
    let (stdout, stderr, ok) = run_rat(&["analyze", &worksheet("pdf1d")]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("10.6"),
        "missing Table-3 speedup:\n{stdout}"
    );
    assert!(stdout.contains("computation-bound"), "{stdout}");
}

#[test]
fn solve_on_shipped_md_worksheet_recovers_the_tuning() {
    let (stdout, _, ok) = run_rat(&["solve", &worksheet("md"), "10.7"]);
    assert!(ok);
    // §5.2's tuned value: ~50 ops/cycle.
    assert!(
        stdout.contains("required throughput_proc: 50.0 ops/cycle"),
        "{stdout}"
    );
}

#[test]
fn unknown_command_fails_with_usage_hint() {
    let (_, stderr, ok) = run_rat(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn missing_worksheet_is_a_clean_error() {
    let (_, stderr, ok) = run_rat(&["analyze", "/nonexistent/path.toml"]);
    assert!(!ok);
    assert!(stderr.contains("reading"), "{stderr}");
}

#[test]
fn help_exits_zero() {
    let (stdout, _, ok) = run_rat(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

// ---- exit-code taxonomy: one test per failure class, each asserting the
// ---- `caused by:` source chain renders so the user sees both the CLI
// ---- context and the underlying model error.

#[test]
fn infeasible_strict_solve_exits_4_with_cause_chain() {
    // No design reaches a billionfold speedup: communication alone exceeds
    // the per-iteration budget, so `solve --strict` must fail infeasible.
    let (stdout, stderr, code) =
        run_rat_env(&["solve", "--strict", &worksheet("pdf1d"), "1e9"], &[]);
    assert_eq!(code, 4, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stderr.contains("error: solving"), "{stderr}");
    assert!(stderr.contains("caused by: infeasible:"), "{stderr}");
    // Without --strict the same target renders inline and exits 0.
    let (stdout, _, code) = run_rat_env(&["solve", &worksheet("pdf1d"), "1e9"], &[]);
    assert_eq!(code, 0);
    assert!(stdout.contains("infeasible"), "{stdout}");
}

#[test]
fn simulation_failure_exits_5_with_cause_chain() {
    // A zero clock is user input the simulator rejects; the CLI must report
    // what it was doing (context) plus the simulator's reason (cause).
    let (_, stderr, code) = run_rat_env(&["trace", "pdf1d", "--mhz", "0"], &[]);
    assert_eq!(code, 5, "stderr: {stderr}");
    assert!(stderr.contains("error: simulating pdf1d"), "{stderr}");
    assert!(stderr.contains("caused by: simulation failed:"), "{stderr}");
}

#[test]
fn unwritable_cache_path_exits_6_with_cause_chain() {
    // RAT_SIM_CACHE pointing into a nonexistent directory must fail up
    // front (exit 6), not silently lose cache writes at the end of the run.
    let (_, stderr, code) = run_rat_env(
        &["analyze", &worksheet("pdf1d")],
        &[("RAT_SIM_CACHE", "/nonexistent-rat-dir/cache.tsv")],
    );
    assert_eq!(code, 6, "stderr: {stderr}");
    assert!(
        stderr.contains("error: opening simulator cache (RAT_SIM_CACHE)"),
        "{stderr}"
    );
    assert!(stderr.contains("caused by:"), "{stderr}");
}

#[test]
fn trace_mhz_override_is_reflected_in_output() {
    let (stdout, _, code) = run_rat_env(&["trace", "pdf1d", "--mhz", "100"], &[]);
    assert_eq!(code, 0);
    assert!(stdout.contains("simulated at 100 MHz"), "{stdout}");
}
