//! True end-to-end tests of the `rat` binary: spawn the compiled executable
//! against the shipped worksheets and inspect stdout/exit codes, the way a
//! user's shell would.

use std::path::PathBuf;
use std::process::Command;

fn rat_binary() -> PathBuf {
    // target/<profile>/rat, relative to this test binary's location
    // (target/<profile>/deps/...).
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("rat{}", std::env::consts::EXE_SUFFIX));
    p
}

fn worksheet(name: &str) -> String {
    format!("{}/worksheets/{name}.toml", env!("CARGO_MANIFEST_DIR"))
}

fn run_rat(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(rat_binary())
        .args(args)
        .output()
        .expect("spawning the rat binary (build it with `cargo build -p rat-cli`)");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn analyze_shipped_pdf1d_worksheet() {
    let (stdout, stderr, ok) = run_rat(&["analyze", &worksheet("pdf1d")]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("10.6"),
        "missing Table-3 speedup:\n{stdout}"
    );
    assert!(stdout.contains("computation-bound"), "{stdout}");
}

#[test]
fn solve_on_shipped_md_worksheet_recovers_the_tuning() {
    let (stdout, _, ok) = run_rat(&["solve", &worksheet("md"), "10.7"]);
    assert!(ok);
    // §5.2's tuned value: ~50 ops/cycle.
    assert!(
        stdout.contains("required throughput_proc: 50.0 ops/cycle"),
        "{stdout}"
    );
}

#[test]
fn unknown_command_fails_with_usage_hint() {
    let (_, stderr, ok) = run_rat(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn missing_worksheet_is_a_clean_error() {
    let (_, stderr, ok) = run_rat(&["analyze", "/nonexistent/path.toml"]);
    assert!(!ok);
    assert!(stderr.contains("reading"), "{stderr}");
}

#[test]
fn help_exits_zero() {
    let (stdout, _, ok) = run_rat(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}
