//! End-to-end smoke test of `rat watch`: touch the worksheet while the
//! watcher polls, and check that exactly one re-render happens, that its
//! stderr status line shows the comm stage *hitting* (the re-parse produced
//! identical typed inputs, so every stage is served from the session cache),
//! and that stdout is byte-identical to two copies of `rat analyze` output.
//!
//! Spawns the real binary: watch is an interactive loop around the staged
//! solve path, and its stdout/stderr contract is exactly what a user sees.

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

fn rat_binary() -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("rat{}", std::env::consts::EXE_SUFFIX));
    p
}

fn worksheet(name: &str) -> String {
    format!("{}/worksheets/{name}.toml", env!("CARGO_MANIFEST_DIR"))
}

/// A scratch path under the temp dir (kept out of the repo tree).
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rat-watch-{}-{name}", std::process::id()));
    p
}

#[test]
fn watch_rerenders_once_on_touch_with_comm_stage_hit() {
    // Copy the worksheet to a scratch path the test may mutate.
    let ws = scratch("pdf1d.toml");
    std::fs::copy(worksheet("pdf1d"), &ws).expect("copy worksheet");

    // The watcher exits after the second render; the toucher appends a
    // comment (a content change that parses to identical typed inputs)
    // until the watcher notices and exits.
    let mut child = Command::new(rat_binary())
        .args(["watch", ws.to_str().expect("utf-8 path")])
        .args(["--poll-ms", "25", "--max-renders", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawning the rat binary (build it with `cargo build -p rat-cli`)");

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        match child.try_wait().expect("poll watcher") {
            Some(_) => break,
            None if std::time::Instant::now() > deadline => {
                child.kill().ok();
                panic!("watcher did not exit within 30s of worksheet touches");
            }
            None => {
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&ws)
                    .expect("open worksheet for append");
                writeln!(f, "# touched").expect("append touch comment");
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
    let out = child.wait_with_output().expect("collect watcher output");
    std::fs::remove_file(&ws).ok();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "watch failed: {stderr}");

    // Exactly two renders: the immediate first one and one re-render.
    assert_eq!(
        stderr.matches("watch[").count(),
        2,
        "expected exactly two renders:\n{stderr}"
    );
    // Render 1 is all-miss (cold session cache)...
    assert!(
        stderr.contains("watch[1]: stages comm=miss comp=miss overlap=miss speedup=miss"),
        "first render must miss every stage:\n{stderr}"
    );
    // ...and the re-render hits every stage: the appended comment changed
    // the bytes but not the typed inputs, so nothing was dirtied.
    assert!(
        stderr.contains("watch[2]: stages comm=hit comp=hit overlap=hit speedup=hit"),
        "re-render must hit the comm stage (and every other stage):\n{stderr}"
    );

    // stdout is exactly two copies of the analyze report. The repo worksheet
    // parses to the same typed inputs as the touched scratch copy, so the
    // rendered report is identical.
    let one = Command::new(rat_binary())
        .args(["analyze", &worksheet("pdf1d")])
        .output()
        .expect("analyze for comparison");
    assert!(one.status.success());
    let mut two = String::from_utf8_lossy(&one.stdout).into_owned();
    two.push_str(&String::from_utf8_lossy(&one.stdout));
    assert_eq!(
        stdout, two,
        "watch stdout must be two byte-identical copies of the analyze report"
    );
}
